#include "problems/mvc/mvc.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::mvc {

MvcInstance::MvcInstance(std::size_t num_vertices, std::vector<Edge> edges)
    : MvcInstance(num_vertices, std::move(edges),
                  std::vector<double>(num_vertices, 1.0)) {}

MvcInstance::MvcInstance(std::size_t num_vertices, std::vector<Edge> edges,
                         std::vector<double> weights)
    : n_(num_vertices), edges_(std::move(edges)), weights_(std::move(weights)) {
  QROSS_REQUIRE(n_ >= 1, "MVC needs at least one vertex");
  QROSS_REQUIRE(weights_.size() == n_, "weight count mismatch");
  for (auto& e : edges_) {
    QROSS_REQUIRE(e.u < n_ && e.v < n_, "edge endpoint out of range");
    QROSS_REQUIRE(e.u != e.v, "self loops not allowed");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  for (double w : weights_) {
    QROSS_REQUIRE(w >= 0.0, "vertex weights must be non-negative");
  }
}

double MvcInstance::cover_weight(std::span<const std::uint8_t> selection) const {
  QROSS_REQUIRE(selection.size() == n_, "selection size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (selection[i] != 0) total += weights_[i];
  }
  return total;
}

std::size_t MvcInstance::uncovered_edges(
    std::span<const std::uint8_t> selection) const {
  QROSS_REQUIRE(selection.size() == n_, "selection size mismatch");
  std::size_t count = 0;
  for (const auto& e : edges_) {
    if (selection[e.u] == 0 && selection[e.v] == 0) ++count;
  }
  return count;
}

qubo::QuboModel MvcInstance::to_qubo(double sigma) const {
  qubo::QuboModel q(n_);
  for (std::size_t i = 0; i < n_; ++i) q.add_term(i, i, weights_[i]);
  // Each edge contributes sigma * (1 - u - v + u v).
  for (const auto& e : edges_) {
    q.add_offset(sigma);
    q.add_term(e.u, e.u, -sigma);
    q.add_term(e.v, e.v, -sigma);
    q.add_term(e.u, e.v, sigma);
  }
  return q;
}

MvcInstance generate_random_mvc(std::size_t num_vertices,
                                double edge_probability, std::uint64_t seed) {
  QROSS_REQUIRE(edge_probability >= 0.0 && edge_probability <= 1.0,
                "edge probability in [0, 1]");
  Rng rng(seed);
  std::vector<Edge> edges;
  for (std::size_t u = 0; u < num_vertices; ++u) {
    for (std::size_t v = u + 1; v < num_vertices; ++v) {
      if (rng.bernoulli(edge_probability)) edges.push_back({u, v});
    }
  }
  std::vector<double> weights(num_vertices);
  for (auto& w : weights) w = rng.uniform();
  return MvcInstance(num_vertices, std::move(edges), std::move(weights));
}

std::vector<std::uint8_t> greedy_cover(const MvcInstance& instance) {
  const std::size_t n = instance.num_vertices();
  std::vector<std::uint8_t> selection(n, 0);
  std::vector<Edge> uncovered = instance.edges();
  while (!uncovered.empty()) {
    // Degree over still-uncovered edges.
    std::vector<std::size_t> degree(n, 0);
    for (const auto& e : uncovered) {
      ++degree[e.u];
      ++degree[e.v];
    }
    double best_score = -1.0;
    std::size_t best_vertex = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (selection[v] != 0 || degree[v] == 0) continue;
      // Most coverage per unit weight; tiny epsilon guards zero weights.
      const double score =
          static_cast<double>(degree[v]) / (instance.weights()[v] + 1e-12);
      if (score > best_score) {
        best_score = score;
        best_vertex = v;
      }
    }
    QROSS_ASSERT(best_vertex < n);
    selection[best_vertex] = 1;
    std::erase_if(uncovered, [&](const Edge& e) {
      return e.u == best_vertex || e.v == best_vertex;
    });
  }
  return selection;
}

namespace {

void exact_recurse(const MvcInstance& instance,
                   std::vector<std::uint8_t>& selection, double weight,
                   ExactCover& best) {
  if (weight >= best.weight) return;  // bound
  // Find an uncovered edge to branch on.
  const Edge* branch_edge = nullptr;
  for (const auto& e : instance.edges()) {
    if (selection[e.u] == 0 && selection[e.v] == 0) {
      branch_edge = &e;
      break;
    }
  }
  if (branch_edge == nullptr) {
    best.weight = weight;
    best.selection = selection;
    return;
  }
  // Either endpoint must join the cover.
  for (std::size_t endpoint : {branch_edge->u, branch_edge->v}) {
    selection[endpoint] = 1;
    exact_recurse(instance, selection, weight + instance.weights()[endpoint],
                  best);
    selection[endpoint] = 0;
  }
}

}  // namespace

ExactCover solve_exact_cover(const MvcInstance& instance) {
  QROSS_REQUIRE(instance.num_vertices() <= 30,
                "exact cover limited to 30 vertices");
  ExactCover best;
  best.selection = greedy_cover(instance);
  best.weight = instance.cover_weight(best.selection);
  // Allow improving on greedy; bound check inside uses strict <.
  best.weight += 1e-12;
  std::vector<std::uint8_t> selection(instance.num_vertices(), 0);
  exact_recurse(instance, selection, 0.0, best);
  QROSS_ASSERT(instance.is_cover(best.selection));
  return best;
}

}  // namespace qross::mvc
