#pragma once

// Mini-batch training loop with shuffling, a validation split, and
// early stopping on validation loss (restoring the best parameters).

#include <cstdint>
#include <vector>

#include "nn/adam.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace qross::nn {

struct TrainConfig {
  std::size_t max_epochs = 300;
  std::size_t batch_size = 32;
  double validation_fraction = 0.15;
  /// Early stopping: epochs without validation improvement before halting.
  std::size_t patience = 30;
  AdamConfig adam;
  std::uint64_t seed = 17;
  bool verbose = false;
};

struct TrainHistory {
  std::vector<double> train_loss;  // one entry per epoch
  std::vector<double> val_loss;
  std::size_t best_epoch = 0;
  double best_val_loss = 0.0;
};

/// Trains `mlp` to map inputs -> targets under `loss`.  Rows are samples.
/// Returns per-epoch history; the network is left holding the parameters of
/// the best validation epoch.
TrainHistory train_mlp(Mlp& mlp, const Matrix& inputs, const Matrix& targets,
                       const Loss& loss, const TrainConfig& config);

/// Mean loss of `mlp` over a dataset (no parameter update).
double evaluate_loss(const Mlp& mlp, const Matrix& inputs,
                     const Matrix& targets, const Loss& loss);

}  // namespace qross::nn
