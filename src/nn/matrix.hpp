#pragma once

// Dense row-major matrix for the surrogate's MLP.  Deliberately small:
// the surrogate has two hidden layers of a few dozen units, so clarity and
// determinism win over BLAS-grade performance.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace qross::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double value);

  /// this (r x k) times other (k x c) -> (r x c).
  Matrix multiply(const Matrix& other) const;

  /// this^T (k x r) times other (k x c) -> (r x c); avoids materialising the
  /// transpose in the backward pass.
  Matrix transpose_multiply(const Matrix& other) const;

  /// this (r x k) times other^T (c x k) -> (r x c).
  Matrix multiply_transpose(const Matrix& other) const;

  Matrix& add_in_place(const Matrix& other);
  Matrix& scale_in_place(double factor);

  /// Column-wise sum -> 1 x cols (bias gradients).
  Matrix column_sums() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace qross::nn
