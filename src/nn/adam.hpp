#pragma once

// Adam optimiser (Kingma & Ba) over the MLP's flattened parameter views.

#include <cstddef>
#include <vector>

namespace qross::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  // decoupled (AdamW-style) when nonzero
};

class Adam {
 public:
  explicit Adam(std::size_t num_parameters, AdamConfig config = {});

  /// One update: params[i] -= lr * mhat / (sqrt(vhat) + eps), reading
  /// grads[i] and writing through params[i].
  void step(const std::vector<double*>& params,
            const std::vector<double*>& grads);

  std::size_t iterations() const { return t_; }

 private:
  AdamConfig config_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_ = 0;
};

}  // namespace qross::nn
