#include "nn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::nn {

namespace {

Matrix gather_rows(const Matrix& source, const std::vector<std::size_t>& rows,
                   std::size_t begin, std::size_t end) {
  Matrix out(end - begin, source.cols());
  for (std::size_t i = begin; i < end; ++i) {
    const auto src = source.row(rows[i]);
    std::copy(src.begin(), src.end(), out.row(i - begin).begin());
  }
  return out;
}

}  // namespace

double evaluate_loss(const Mlp& mlp, const Matrix& inputs,
                     const Matrix& targets, const Loss& loss) {
  Matrix grad;
  const Matrix predictions = mlp.predict(inputs);
  return loss.evaluate(predictions, targets, grad);
}

TrainHistory train_mlp(Mlp& mlp, const Matrix& inputs, const Matrix& targets,
                       const Loss& loss, const TrainConfig& config) {
  QROSS_REQUIRE(inputs.rows() == targets.rows(), "sample count mismatch");
  QROSS_REQUIRE(inputs.rows() >= 2, "need at least two samples");
  QROSS_REQUIRE(config.batch_size >= 1, "batch size must be positive");
  QROSS_REQUIRE(config.validation_fraction >= 0.0 &&
                    config.validation_fraction < 1.0,
                "validation fraction in [0, 1)");

  const std::size_t num_samples = inputs.rows();
  Rng rng(config.seed);
  std::vector<std::size_t> order = rng.permutation(num_samples);

  std::size_t num_val = static_cast<std::size_t>(
      config.validation_fraction * static_cast<double>(num_samples));
  if (config.validation_fraction > 0.0) {
    num_val = std::clamp<std::size_t>(num_val, 1, num_samples - 1);
  }
  const std::size_t num_train = num_samples - num_val;

  const Matrix val_x = gather_rows(inputs, order, num_train, num_samples);
  const Matrix val_y = gather_rows(targets, order, num_train, num_samples);
  std::vector<std::size_t> train_rows(order.begin(),
                                      order.begin() + static_cast<std::ptrdiff_t>(num_train));

  Adam optimiser(mlp.num_parameters(), config.adam);
  TrainHistory history;
  history.best_val_loss = std::numeric_limits<double>::infinity();

  // Snapshot for early-stopping restoration.
  std::vector<double> best_params(mlp.num_parameters());
  auto snapshot = [&] {
    const auto params = mlp.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) best_params[i] = *params[i];
  };
  auto restore = [&] {
    const auto params = mlp.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) *params[i] = best_params[i];
  };
  snapshot();

  std::size_t epochs_since_best = 0;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    rng.shuffle(train_rows);
    double epoch_loss = 0.0;
    std::size_t num_batches = 0;
    for (std::size_t begin = 0; begin < num_train;
         begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, num_train);
      const Matrix batch_x = gather_rows(inputs, train_rows, begin, end);
      const Matrix batch_y = gather_rows(targets, train_rows, begin, end);
      mlp.zero_gradients();
      const Matrix predictions = mlp.forward(batch_x);
      Matrix grad;
      epoch_loss += loss.evaluate(predictions, batch_y, grad);
      mlp.backward(grad);
      optimiser.step(mlp.parameters(), mlp.gradients());
      ++num_batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(num_batches, 1));
    history.train_loss.push_back(epoch_loss);

    const double val_loss =
        num_val > 0 ? evaluate_loss(mlp, val_x, val_y, loss) : epoch_loss;
    history.val_loss.push_back(val_loss);
    if (config.verbose) {
      std::printf("epoch %3zu  train %.6f  val %.6f\n", epoch, epoch_loss,
                  val_loss);
    }

    if (val_loss < history.best_val_loss - 1e-12) {
      history.best_val_loss = val_loss;
      history.best_epoch = epoch;
      epochs_since_best = 0;
      snapshot();
    } else if (++epochs_since_best > config.patience) {
      break;
    }
  }
  restore();
  return history;
}

}  // namespace qross::nn
