#include "nn/matrix.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace qross::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  QROSS_REQUIRE(data_.size() == rows_ * cols_, "matrix data size mismatch");
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::multiply(const Matrix& other) const {
  QROSS_REQUIRE(cols_ == other.rows_, "multiply shape mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    double* o = out.data_.data() + r * other.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      const double* b = other.data_.data() + k * other.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
    }
  }
  return out;
}

Matrix Matrix::transpose_multiply(const Matrix& other) const {
  QROSS_REQUIRE(rows_ == other.rows_, "transpose_multiply shape mismatch");
  Matrix out(cols_, other.cols_, 0.0);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* a = data_.data() + k * cols_;
    const double* b = other.data_.data() + k * other.cols_;
    for (std::size_t r = 0; r < cols_; ++r) {
      const double av = a[r];
      if (av == 0.0) continue;
      double* o = out.data_.data() + r * other.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
    }
  }
  return out;
}

Matrix Matrix::multiply_transpose(const Matrix& other) const {
  QROSS_REQUIRE(cols_ == other.cols_, "multiply_transpose shape mismatch");
  Matrix out(rows_, other.rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    for (std::size_t c = 0; c < other.rows_; ++c) {
      const double* b = other.data_.data() + c * other.cols_;
      double sum = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) sum += a[k] * b[k];
      out(r, c) = sum;
    }
  }
  return out;
}

Matrix& Matrix::add_in_place(const Matrix& other) {
  QROSS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::scale_in_place(double factor) {
  for (double& v : data_) v *= factor;
  return *this;
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += a[c];
  }
  return out;
}

}  // namespace qross::nn
