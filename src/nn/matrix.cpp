#include "nn/matrix.hpp"

#include <algorithm>

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/assert.hpp"

namespace qross::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  QROSS_REQUIRE(data_.size() == rows_ * cols_, "matrix data size mismatch");
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

namespace {

#if defined(__GNUC__) && defined(__x86_64__)
#define QROSS_NN_AVX2_DISPATCH 1
#else
#define QROSS_NN_AVX2_DISPATCH 0
#endif

/// Per-row product rows [r, rows): the original kernel, kept as the
/// baseline arm and as the row tail of the blocked arm.  Skips exact-zero
/// a[k] terms (ReLU activations are mostly zeros).
void multiply_rows(const double* a_data, const double* b_data, double* o_data,
                   std::size_t r, std::size_t rows, std::size_t inner,
                   std::size_t n) {
  for (; r < rows; ++r) {
    const double* a = a_data + r * inner;
    double* o = o_data + r * n;
    for (std::size_t k = 0; k < inner; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      const double* b = b_data + k * n;
      for (std::size_t c = 0; c < n; ++c) o[c] += av * b[c];
    }
  }
}

#if QROSS_NN_AVX2_DISPATCH

/// Register-blocked AVX2 arm for multi-row batches: 4 output rows x 8
/// columns of accumulators live in eight ymm registers across the whole k
/// loop, so each loaded slice of `b` feeds four output rows instead of one.
/// This is where batching prediction rows from many tuner sessions into
/// one forward pass beats repeated single-row passes.  Compiled with a
/// per-function target attribute and reached only when the CPU reports
/// AVX2 (the qubo SIMD-arm idiom, see replica_block_avx2.cpp).
///
/// Bit-identity with the per-row arm is load-bearing (BatchedSurrogate
/// promises batch composition cannot perturb a row):
///
///   * every output element accumulates its products in ascending-k order
///     starting from +0.0; vector lanes are independent column chains,
///     never a reassociation within one;
///   * no FMA: explicit _mm256_mul_pd + _mm256_add_pd, so each product
///     and each add rounds exactly like the per-row arm's;
///   * the per-row arm skips a[k] == 0.0 terms while this kernel adds
///     them, which cannot change any bit: adding the skipped +-0.0
///     product to an accumulator that is either +0.0 or nonzero is an
///     identity, and an accumulator seeded with +0.0 can never become
///     -0.0 under round-to-nearest addition.
__attribute__((target("avx2"))) void multiply_blocked_avx2(
    const double* a_data, const double* b_data, double* o_data,
    std::size_t rows, std::size_t inner, std::size_t n) {
  constexpr std::size_t kRowBlock = 4;
  constexpr std::size_t kColBlock = 8;
  std::size_t r = 0;
  for (; r + kRowBlock <= rows; r += kRowBlock) {
    const double* a0 = a_data + (r + 0) * inner;
    const double* a1 = a_data + (r + 1) * inner;
    const double* a2 = a_data + (r + 2) * inner;
    const double* a3 = a_data + (r + 3) * inner;
    std::size_t c0 = 0;
    for (; c0 + kColBlock <= n; c0 += kColBlock) {
      __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
      __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
      __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
      __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
      for (std::size_t k = 0; k < inner; ++k) {
        const double* b = b_data + k * n + c0;
        const __m256d b0 = _mm256_loadu_pd(b);
        const __m256d b1 = _mm256_loadu_pd(b + 4);
        const __m256d av0 = _mm256_set1_pd(a0[k]);
        acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(av0, b0));
        acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(av0, b1));
        const __m256d av1 = _mm256_set1_pd(a1[k]);
        acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(av1, b0));
        acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(av1, b1));
        const __m256d av2 = _mm256_set1_pd(a2[k]);
        acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(av2, b0));
        acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(av2, b1));
        const __m256d av3 = _mm256_set1_pd(a3[k]);
        acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(av3, b0));
        acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(av3, b1));
      }
      _mm256_storeu_pd(o_data + (r + 0) * n + c0, acc00);
      _mm256_storeu_pd(o_data + (r + 0) * n + c0 + 4, acc01);
      _mm256_storeu_pd(o_data + (r + 1) * n + c0, acc10);
      _mm256_storeu_pd(o_data + (r + 1) * n + c0 + 4, acc11);
      _mm256_storeu_pd(o_data + (r + 2) * n + c0, acc20);
      _mm256_storeu_pd(o_data + (r + 2) * n + c0 + 4, acc21);
      _mm256_storeu_pd(o_data + (r + 3) * n + c0, acc30);
      _mm256_storeu_pd(o_data + (r + 3) * n + c0 + 4, acc31);
    }
    // Column tail: per-element scalar sums, same ascending-k accumulation.
    for (std::size_t c = c0; c < n; ++c) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double bv = b_data[k * n + c];
        s0 += a0[k] * bv;
        s1 += a1[k] * bv;
        s2 += a2[k] * bv;
        s3 += a3[k] * bv;
      }
      o_data[(r + 0) * n + c] = s0;
      o_data[(r + 1) * n + c] = s1;
      o_data[(r + 2) * n + c] = s2;
      o_data[(r + 3) * n + c] = s3;
    }
  }
  multiply_rows(a_data, b_data, o_data, r, rows, inner, n);
}

#endif  // QROSS_NN_AVX2_DISPATCH

}  // namespace

Matrix Matrix::multiply(const Matrix& other) const {
  QROSS_REQUIRE(cols_ == other.rows_, "multiply shape mismatch");
  Matrix out(rows_, other.cols_, 0.0);
#if QROSS_NN_AVX2_DISPATCH
  static const bool use_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (use_avx2 && rows_ >= 4 && other.cols_ >= 8) {
    multiply_blocked_avx2(data_.data(), other.data_.data(), out.data_.data(),
                          rows_, cols_, other.cols_);
    return out;
  }
#endif
  multiply_rows(data_.data(), other.data_.data(), out.data_.data(), 0, rows_,
                cols_, other.cols_);
  return out;
}

Matrix Matrix::transpose_multiply(const Matrix& other) const {
  QROSS_REQUIRE(rows_ == other.rows_, "transpose_multiply shape mismatch");
  Matrix out(cols_, other.cols_, 0.0);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* a = data_.data() + k * cols_;
    const double* b = other.data_.data() + k * other.cols_;
    for (std::size_t r = 0; r < cols_; ++r) {
      const double av = a[r];
      if (av == 0.0) continue;
      double* o = out.data_.data() + r * other.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) o[c] += av * b[c];
    }
  }
  return out;
}

Matrix Matrix::multiply_transpose(const Matrix& other) const {
  QROSS_REQUIRE(cols_ == other.cols_, "multiply_transpose shape mismatch");
  Matrix out(rows_, other.rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    for (std::size_t c = 0; c < other.rows_; ++c) {
      const double* b = other.data_.data() + c * other.cols_;
      double sum = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) sum += a[k] * b[k];
      out(r, c) = sum;
    }
  }
  return out;
}

Matrix& Matrix::add_in_place(const Matrix& other) {
  QROSS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "add shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::scale_in_place(double factor) {
  for (double& v : data_) v *= factor;
  return *this;
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += a[c];
  }
  return out;
}

}  // namespace qross::nn
