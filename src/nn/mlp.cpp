#include "nn/mlp.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::nn {

double apply_activation(Activation act, double x) {
  switch (act) {
    case Activation::kReLU:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kIdentity:
      return x;
  }
  QROSS_ASSERT_MSG(false, "unknown activation");
  return 0.0;
}

double activation_derivative(Activation act, double pre_activation) {
  switch (act) {
    case Activation::kReLU:
      return pre_activation > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh: {
      const double t = std::tanh(pre_activation);
      return 1.0 - t * t;
    }
    case Activation::kIdentity:
      return 1.0;
  }
  QROSS_ASSERT_MSG(false, "unknown activation");
  return 0.0;
}

Mlp::Mlp(std::vector<std::size_t> layer_sizes, Activation hidden_activation,
         std::uint64_t seed) {
  QROSS_REQUIRE(layer_sizes.size() >= 2, "need at least input and output");
  for (std::size_t s : layer_sizes) {
    QROSS_REQUIRE(s >= 1, "layer sizes must be positive");
  }
  Rng rng(seed);
  layers_.resize(layer_sizes.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t in = layer_sizes[l];
    const std::size_t out = layer_sizes[l + 1];
    auto& layer = layers_[l];
    layer.weights = Matrix(in, out);
    layer.bias = Matrix(1, out, 0.0);
    layer.weight_grad = Matrix(in, out, 0.0);
    layer.bias_grad = Matrix(1, out, 0.0);
    layer.activation = l + 1 < layers_.size() ? hidden_activation
                                              : Activation::kIdentity;
    // He initialisation keeps ReLU variances stable through depth.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (double& w : layer.weights.data()) w = rng.normal(0.0, scale);
  }
}

std::size_t Mlp::input_dim() const { return layers_.front().weights.rows(); }
std::size_t Mlp::output_dim() const { return layers_.back().weights.cols(); }

std::size_t Mlp::num_parameters() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) {
    count += layer.weights.size() + layer.bias.size();
  }
  return count;
}

Matrix Mlp::forward(const Matrix& batch) {
  QROSS_REQUIRE(batch.cols() == input_dim(), "input dimension mismatch");
  Matrix current = batch;
  for (auto& layer : layers_) {
    layer.input = current;
    Matrix z = current.multiply(layer.weights);
    for (std::size_t r = 0; r < z.rows(); ++r) {
      for (std::size_t c = 0; c < z.cols(); ++c) z(r, c) += layer.bias(0, c);
    }
    layer.pre_activation = z;
    for (double& v : z.data()) v = apply_activation(layer.activation, v);
    current = std::move(z);
  }
  return current;
}

Matrix Mlp::predict(const Matrix& batch) const {
  QROSS_REQUIRE(batch.cols() == input_dim(), "input dimension mismatch");
  // Inference-only forward: no layer.input/pre_activation bookkeeping, no
  // copy of the input batch, and bias + activation fused into one sweep
  // (per-element arithmetic identical to forward(): add the bias, then
  // apply the activation).  The batched-prediction service path runs
  // thousands of rows per pass through here, where the extra sweeps and
  // copies rival the matrix products themselves.
  const Matrix* current = &batch;
  Matrix next;
  for (const auto& layer : layers_) {
    Matrix z = current->multiply(layer.weights);
    const double* bias = layer.bias.data().data();
    const std::size_t cols = z.cols();
    if (layer.activation == Activation::kReLU) {
      for (std::size_t r = 0; r < z.rows(); ++r) {
        double* zr = z.data().data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          const double v = zr[c] + bias[c];
          zr[c] = v > 0.0 ? v : 0.0;
        }
      }
    } else {
      for (std::size_t r = 0; r < z.rows(); ++r) {
        double* zr = z.data().data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          zr[c] = apply_activation(layer.activation, zr[c] + bias[c]);
        }
      }
    }
    next = std::move(z);
    current = &next;
  }
  return layers_.empty() ? batch : next;
}

Matrix Mlp::backward(const Matrix& output_grad) {
  Matrix grad = output_grad;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    auto& layer = layers_[l];
    QROSS_REQUIRE(grad.rows() == layer.pre_activation.rows() &&
                      grad.cols() == layer.pre_activation.cols(),
                  "backward called without matching forward");
    // Through the activation.
    for (std::size_t r = 0; r < grad.rows(); ++r) {
      for (std::size_t c = 0; c < grad.cols(); ++c) {
        grad(r, c) *=
            activation_derivative(layer.activation, layer.pre_activation(r, c));
      }
    }
    layer.weight_grad.add_in_place(layer.input.transpose_multiply(grad));
    layer.bias_grad.add_in_place(grad.column_sums());
    if (l > 0) grad = grad.multiply_transpose(layer.weights);
  }
  return grad;
}

void Mlp::zero_gradients() {
  for (auto& layer : layers_) {
    layer.weight_grad.fill(0.0);
    layer.bias_grad.fill(0.0);
  }
}

std::vector<double*> Mlp::parameters() {
  std::vector<double*> out;
  for (auto& layer : layers_) {
    for (double& w : layer.weights.data()) out.push_back(&w);
    for (double& b : layer.bias.data()) out.push_back(&b);
  }
  return out;
}

std::vector<double*> Mlp::gradients() {
  std::vector<double*> out;
  for (auto& layer : layers_) {
    for (double& w : layer.weight_grad.data()) out.push_back(&w);
    for (double& b : layer.bias_grad.data()) out.push_back(&b);
  }
  return out;
}

void Mlp::save(std::ostream& os) const {
  os << "mlp " << layers_.size() << "\n";
  os.precision(17);
  for (const auto& layer : layers_) {
    os << layer.weights.rows() << ' ' << layer.weights.cols() << ' '
       << static_cast<int>(layer.activation) << "\n";
    for (double w : layer.weights.data()) os << w << ' ';
    os << "\n";
    for (double b : layer.bias.data()) os << b << ' ';
    os << "\n";
  }
}

Mlp Mlp::load(std::istream& is) {
  std::string magic;
  std::size_t num_layers = 0;
  QROSS_REQUIRE(static_cast<bool>(is >> magic >> num_layers) && magic == "mlp",
                "bad MLP header");
  Mlp mlp;
  mlp.layers_.resize(num_layers);
  for (auto& layer : mlp.layers_) {
    std::size_t in = 0, out = 0;
    int act = 0;
    QROSS_REQUIRE(static_cast<bool>(is >> in >> out >> act),
                  "bad MLP layer header");
    layer.weights = Matrix(in, out);
    layer.bias = Matrix(1, out);
    layer.weight_grad = Matrix(in, out, 0.0);
    layer.bias_grad = Matrix(1, out, 0.0);
    layer.activation = static_cast<Activation>(act);
    for (double& w : layer.weights.data()) {
      QROSS_REQUIRE(static_cast<bool>(is >> w), "bad MLP weight data");
    }
    for (double& b : layer.bias.data()) {
      QROSS_REQUIRE(static_cast<bool>(is >> b), "bad MLP bias data");
    }
  }
  return mlp;
}

}  // namespace qross::nn
