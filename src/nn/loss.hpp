#pragma once

// Loss functions for the surrogate heads (paper appendix G): binary cross
// entropy with logits for the Pf head, Huber for the energy heads (the
// paper picks Huber because solver stochasticity produces outliers).
//
// Each loss returns the mean loss over the batch and writes dL/d(prediction)
// (already divided by the batch size) into `grad`.

#include "nn/matrix.hpp"

namespace qross::nn {

class Loss {
 public:
  virtual ~Loss() = default;
  /// Mean loss; `grad` is resized/overwritten with dL/dpred.
  virtual double evaluate(const Matrix& predictions, const Matrix& targets,
                          Matrix& grad) const = 0;
};

/// Numerically-stable BCE on raw logits; targets in [0, 1] (soft labels such
/// as empirical Pf estimates are fine).
class BceWithLogitsLoss final : public Loss {
 public:
  double evaluate(const Matrix& predictions, const Matrix& targets,
                  Matrix& grad) const override;
};

/// Huber (smooth-L1) with transition point delta.
class HuberLoss final : public Loss {
 public:
  explicit HuberLoss(double delta = 1.0);
  double evaluate(const Matrix& predictions, const Matrix& targets,
                  Matrix& grad) const override;

 private:
  double delta_;
};

/// Plain mean squared error (reference / tests).
class MseLoss final : public Loss {
 public:
  double evaluate(const Matrix& predictions, const Matrix& targets,
                  Matrix& grad) const override;
};

/// Logistic sigmoid (exposed because strategy code converts Pf logits).
double sigmoid(double x);

}  // namespace qross::nn
