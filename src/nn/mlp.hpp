#pragma once

// Multi-layer perceptron with manual backpropagation.
//
// This is the whole "deep learning framework" the solver surrogate needs:
// fully-connected layers, ReLU / tanh hidden activations, linear outputs
// (losses apply their own link, e.g. sigmoid inside BCE-with-logits).
// Weights use He initialisation from an explicit seed; forward/backward
// operate on row-major batches (one sample per row).

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "nn/matrix.hpp"

namespace qross::nn {

enum class Activation { kReLU, kTanh, kIdentity };

double apply_activation(Activation act, double x);
double activation_derivative(Activation act, double pre_activation);

struct LinearLayer {
  Matrix weights;  // in x out
  Matrix bias;     // 1 x out
  Matrix weight_grad;
  Matrix bias_grad;
  Activation activation = Activation::kIdentity;

  // Forward-pass caches consumed by backward().
  Matrix input;
  Matrix pre_activation;
};

class Mlp {
 public:
  /// layer_sizes = {in, hidden..., out}; hidden layers use
  /// `hidden_activation`, the output layer is linear.
  Mlp(std::vector<std::size_t> layer_sizes, Activation hidden_activation,
      std::uint64_t seed);

  std::size_t input_dim() const;
  std::size_t output_dim() const;
  std::size_t num_parameters() const;

  /// Forward pass on a batch (rows = samples).  Caches activations for the
  /// subsequent backward() call.
  Matrix forward(const Matrix& batch);

  /// Forward pass without caching (thread-safe w.r.t. other const calls).
  Matrix predict(const Matrix& batch) const;

  /// Backpropagates dL/d(output); accumulates parameter gradients.
  /// Returns dL/d(input) (used by gradient checking).
  Matrix backward(const Matrix& output_grad);

  void zero_gradients();

  /// Flattened views over all parameters / gradients, in a fixed order, for
  /// the optimiser and for serialisation.
  std::vector<double*> parameters();
  std::vector<double*> gradients();

  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

  const std::vector<LinearLayer>& layers() const { return layers_; }

 private:
  Mlp() = default;
  std::vector<LinearLayer> layers_;
};

}  // namespace qross::nn
