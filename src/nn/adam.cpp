#include "nn/adam.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace qross::nn {

Adam::Adam(std::size_t num_parameters, AdamConfig config)
    : config_(config), m_(num_parameters, 0.0), v_(num_parameters, 0.0) {
  QROSS_REQUIRE(config_.learning_rate > 0.0, "learning rate must be positive");
  QROSS_REQUIRE(config_.beta1 >= 0.0 && config_.beta1 < 1.0, "beta1 in [0,1)");
  QROSS_REQUIRE(config_.beta2 >= 0.0 && config_.beta2 < 1.0, "beta2 in [0,1)");
}

void Adam::step(const std::vector<double*>& params,
                const std::vector<double*>& grads) {
  QROSS_REQUIRE(params.size() == m_.size() && grads.size() == m_.size(),
                "parameter count mismatch");
  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = *grads[i];
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * g;
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * g * g;
    const double mhat = m_[i] / bias1;
    const double vhat = v_[i] / bias2;
    double update = config_.learning_rate * mhat / (std::sqrt(vhat) + config_.epsilon);
    if (config_.weight_decay > 0.0) {
      update += config_.learning_rate * config_.weight_decay * *params[i];
    }
    *params[i] -= update;
  }
}

}  // namespace qross::nn
