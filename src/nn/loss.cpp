#include "nn/loss.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace qross::nn {

double sigmoid(double x) {
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

namespace {

void check_shapes(const Matrix& predictions, const Matrix& targets,
                  Matrix& grad) {
  QROSS_REQUIRE(predictions.rows() == targets.rows() &&
                    predictions.cols() == targets.cols(),
                "loss shape mismatch");
  grad = Matrix(predictions.rows(), predictions.cols(), 0.0);
}

}  // namespace

double BceWithLogitsLoss::evaluate(const Matrix& predictions,
                                   const Matrix& targets, Matrix& grad) const {
  check_shapes(predictions, targets, grad);
  const double inv_n = 1.0 / static_cast<double>(predictions.size());
  double total = 0.0;
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    for (std::size_t c = 0; c < predictions.cols(); ++c) {
      const double z = predictions(r, c);
      const double y = targets(r, c);
      QROSS_REQUIRE(y >= 0.0 && y <= 1.0, "BCE target outside [0, 1]");
      // log(1 + e^{-|z|}) + max(z, 0) - z*y is the stable form of
      // -y*log(sigmoid) - (1-y)*log(1-sigmoid).
      total += std::log1p(std::exp(-std::abs(z))) + std::max(z, 0.0) - z * y;
      grad(r, c) = (sigmoid(z) - y) * inv_n;
    }
  }
  return total * inv_n;
}

HuberLoss::HuberLoss(double delta) : delta_(delta) {
  QROSS_REQUIRE(delta_ > 0.0, "Huber delta must be positive");
}

double HuberLoss::evaluate(const Matrix& predictions, const Matrix& targets,
                           Matrix& grad) const {
  check_shapes(predictions, targets, grad);
  const double inv_n = 1.0 / static_cast<double>(predictions.size());
  double total = 0.0;
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    for (std::size_t c = 0; c < predictions.cols(); ++c) {
      const double e = predictions(r, c) - targets(r, c);
      if (std::abs(e) <= delta_) {
        total += 0.5 * e * e;
        grad(r, c) = e * inv_n;
      } else {
        total += delta_ * (std::abs(e) - 0.5 * delta_);
        grad(r, c) = (e > 0.0 ? delta_ : -delta_) * inv_n;
      }
    }
  }
  return total * inv_n;
}

double MseLoss::evaluate(const Matrix& predictions, const Matrix& targets,
                         Matrix& grad) const {
  check_shapes(predictions, targets, grad);
  const double inv_n = 1.0 / static_cast<double>(predictions.size());
  double total = 0.0;
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    for (std::size_t c = 0; c < predictions.cols(); ++c) {
      const double e = predictions(r, c) - targets(r, c);
      total += e * e;
      grad(r, c) = 2.0 * e * inv_n;
    }
  }
  return total * inv_n;
}

}  // namespace qross::nn
