#include "surrogate/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::surrogate {

void Dataset::save_csv(std::ostream& os, bool include_header) const {
  if (include_header) {
    os << "instance_id";
    for (const auto& name : feature_names()) os << ',' << name;
    os << ",scale_anchor,relaxation_parameter,pf,energy_avg,energy_std\n";
  }
  os.precision(17);
  for (const auto& row : rows) {
    os << row.instance_id;
    for (double f : row.features) os << ',' << f;
    os << ',' << row.scale_anchor << ',' << row.relaxation_parameter << ','
       << row.pf << ',' << row.energy_avg << ',' << row.energy_std << "\n";
  }
}

Dataset Dataset::load_csv(std::istream& is) {
  Dataset dataset;
  std::string line;
  QROSS_REQUIRE(static_cast<bool>(std::getline(is, line)), "missing CSV header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    DatasetRow row;
    char comma = 0;
    QROSS_REQUIRE(static_cast<bool>(ss >> row.instance_id), "bad instance id");
    for (double& f : row.features) {
      QROSS_REQUIRE(static_cast<bool>(ss >> comma >> f), "bad feature value");
    }
    QROSS_REQUIRE(static_cast<bool>(ss >> comma >> row.scale_anchor >> comma >>
                                    row.relaxation_parameter >> comma >>
                                    row.pf >> comma >> row.energy_avg >>
                                    comma >> row.energy_std),
                  "bad dataset row");
    dataset.rows.push_back(row);
  }
  return dataset;
}

SlopeBounds find_slope_bounds(solvers::BatchRunner& runner,
                              double initial_guess,
                              const SweepConfig& config) {
  QROSS_REQUIRE(initial_guess > 0.0, "initial guess must be positive");
  SlopeBounds bounds;

  auto probe = [&](double a) {
    const auto sample = runner.run(a);
    bounds.probes.push_back(sample);
    return sample.stats.pf;
  };

  // Walk down by halving until Pf hits 0 (paper Algorithm 1 line 1).
  double a_left = std::clamp(initial_guess, config.a_min, config.a_max);
  double pf_left = probe(a_left);
  std::size_t steps = 0;
  while (pf_left > 0.0 && a_left > config.a_min &&
         steps++ < config.max_bound_steps) {
    a_left = std::max(a_left / 2.0, config.a_min);
    pf_left = probe(a_left);
  }
  // Walk up by doubling until Pf hits 1 (line 2).
  double a_right = std::clamp(initial_guess * 2.0, config.a_min, config.a_max);
  double pf_right = probe(a_right);
  steps = 0;
  while (pf_right < 1.0 && a_right < config.a_max &&
         steps++ < config.max_bound_steps) {
    a_right = std::min(a_right * 2.0, config.a_max);
    pf_right = probe(a_right);
  }
  // Geometric bisection tightens the bracket around the transition; any
  // fractional-Pf probe is itself a valuable slope sample and stays in
  // `probes`.
  for (std::size_t step = 0; step < config.bisection_steps; ++step) {
    if (a_right <= a_left * 1.05) break;  // bracket already tight
    const double mid = std::sqrt(a_left * a_right);
    const double pf_mid = probe(mid);
    if (pf_mid == 0.0) {
      a_left = mid;
    } else if (pf_mid == 1.0) {
      a_right = mid;
    } else {
      break;  // found the slope: stop shrinking, sample it uniformly below
    }
  }
  bounds.a_left = a_left;
  bounds.a_right = a_right;
  return bounds;
}

std::vector<solvers::SolverSample> sweep_instance(solvers::BatchRunner& runner,
                                                  double initial_guess,
                                                  const SweepConfig& config) {
  SlopeBounds bounds = find_slope_bounds(runner, initial_guess, config);
  std::vector<solvers::SolverSample> samples = std::move(bounds.probes);

  // Uniform coverage of the slope bracket (paper: "make sure that
  // {A | 0 < Pf < 1} are well sampled").
  const double lo = bounds.a_left;
  const double hi = std::max(bounds.a_right, lo * (1.0 + 1e-9));
  for (std::size_t k = 0; k < config.slope_points; ++k) {
    const double t = (static_cast<double>(k) + 0.5) /
                     static_cast<double>(config.slope_points);
    samples.push_back(runner.run(lo + t * (hi - lo)));
  }
  // Plateau coverage on both sides (the paper's overfitting guard).
  for (std::size_t k = 0; k < config.plateau_points; ++k) {
    const double f = 1.0 + 0.4 * static_cast<double>(k + 1);
    samples.push_back(runner.run(std::max(lo / f, config.a_min)));
    samples.push_back(runner.run(std::min(hi * f, config.a_max)));
  }
  return samples;
}

Dataset build_dataset(const std::vector<tsp::TspInstance>& instances,
                      solvers::SolverPtr solver,
                      const solvers::SolveOptions& solve_options,
                      const SweepConfig& sweep_config, bool verbose) {
  Dataset dataset;
  for (std::size_t id = 0; id < instances.size(); ++id) {
    const PreparedTspInstance prepared(instances[id]);
    const auto features = extract_features(prepared.prepared());
    const double anchor = scale_anchor(features);

    solvers::SolveOptions options = solve_options;
    options.seed = derive_seed(solve_options.seed, id);
    solvers::BatchRunner runner(prepared.problem(), solver, options);

    const double guess =
        sweep_config.initial_guess_factor * prepared.prepared().mean_distance();
    const auto samples = sweep_instance(runner, guess, sweep_config);
    for (const auto& sample : samples) {
      DatasetRow row;
      row.instance_id = id;
      row.features = features;
      row.scale_anchor = anchor;
      row.relaxation_parameter = sample.relaxation_parameter;
      row.pf = sample.stats.pf;
      row.energy_avg = sample.stats.energy_avg;
      row.energy_std = sample.stats.energy_std;
      dataset.rows.push_back(row);
    }
    if (verbose) {
      std::fprintf(stderr, "[dataset] instance %zu/%zu (%s): %zu samples\n",
                   id + 1, instances.size(), instances[id].name().c_str(),
                   samples.size());
    }
  }
  return dataset;
}

}  // namespace qross::surrogate
