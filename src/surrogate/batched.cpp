#include "surrogate/batched.hpp"

#include <algorithm>

namespace qross::surrogate {

SurrogatePrediction BatchedSurrogate::predict(
    const std::array<double, kNumTspFeatures>& features, double anchor,
    double a) const {
  SurrogateRequest request{features, anchor, a};
  SurrogatePrediction out;
  evaluate(std::span<const SurrogateRequest>(&request, 1), &out);
  return out;
}

std::vector<SurrogatePrediction> BatchedSurrogate::predict_sweep(
    const std::array<double, kNumTspFeatures>& features, double anchor,
    std::span<const double> a_values) const {
  std::vector<SurrogateRequest> requests(a_values.size());
  for (std::size_t r = 0; r < a_values.size(); ++r) {
    requests[r] = SurrogateRequest{features, anchor, a_values[r]};
  }
  std::vector<SurrogatePrediction> out(a_values.size());
  evaluate(requests, out.data());
  return out;
}

BatchedSurrogate::Stats BatchedSurrogate::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void BatchedSurrogate::evaluate(std::span<const SurrogateRequest> rows,
                                SurrogatePrediction* out) const {
  Pending self{rows, out, false, nullptr};
  MutexLock lock(mutex_);
  ++stats_.calls;
  stats_.rows += rows.size();
  queue_.push_back(&self);
  if (leader_active_) {
    // A leader is mid-drain; it will pick this entry up on its next loop.
    // (`self.done` is this frame's own flag, written by the leader under
    // mutex_ — held here across every wait return.)
    while (!self.done) cv_.wait(lock.native());
    if (self.error) std::rethrow_exception(self.error);
    return;
  }

  leader_active_ = true;
  std::exception_ptr own_error;
  while (!queue_.empty()) {
    std::vector<Pending*> batch;
    batch.swap(queue_);
    std::size_t total = 0;
    for (const Pending* p : batch) total += p->rows.size();
    ++stats_.passes;
    stats_.max_rows_per_pass = std::max<std::uint64_t>(
        stats_.max_rows_per_pass, total);
    if (batch.size() > 1) stats_.combined_rows += total;
    lock.unlock();

    std::exception_ptr error;
    std::vector<SurrogatePrediction> predictions;
    try {
      std::vector<SurrogateRequest> combined;
      combined.reserve(total);
      for (const Pending* p : batch) {
        combined.insert(combined.end(), p->rows.begin(), p->rows.end());
      }
      predictions = inner_->predict_batch(combined);
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    std::size_t offset = 0;
    for (Pending* p : batch) {
      if (error) {
        p->error = error;
      } else {
        std::copy_n(predictions.begin() + static_cast<std::ptrdiff_t>(offset),
                    p->rows.size(), p->out);
      }
      offset += p->rows.size();
      p->done = true;
      if (p == &self) own_error = p->error;
    }
    cv_.notify_all();
  }
  leader_active_ = false;
  if (own_error) std::rethrow_exception(own_error);
}

}  // namespace qross::surrogate
