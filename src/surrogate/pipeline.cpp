#include "surrogate/pipeline.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "problems/tsp/formulation.hpp"

namespace qross::surrogate {

namespace {

tsp::TspInstance scale_instance(const tsp::TspInstance& instance,
                                double factor) {
  const std::size_t n = instance.num_cities();
  std::vector<double> scaled(n * n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v) scaled[u * n + v] = instance.distance(u, v) * factor;
    }
  }
  return tsp::TspInstance(instance.name() + "_scaled", n, std::move(scaled));
}

}  // namespace

PreparedTspInstance::PreparedTspInstance(const tsp::TspInstance& original,
                                         double target_mean_distance)
    : original_(original),
      mvodm_(tsp::mvodm_preprocess(original)),
      prepared_(mvodm_.shifted) {
  QROSS_REQUIRE(target_mean_distance > 0.0, "target mean must be positive");
  for (double p : mvodm_.pi) pi_sum_ += p;
  const double mean = mvodm_.shifted.mean_distance();
  scale_ = mean > 0.0 ? target_mean_distance / mean : 1.0;
  prepared_ = scale_instance(mvodm_.shifted, scale_);
  problem_ = std::make_shared<const qubo::ConstrainedProblem>(
      tsp::build_tsp_problem(prepared_));
}

double PreparedTspInstance::to_original_length(double prepared_length) const {
  const double shifted_length = prepared_length / scale_;
  return mvodm_.to_original_length(shifted_length, original_.num_cities(),
                                   pi_sum_);
}

double PreparedTspInstance::original_tour_length(
    std::span<const std::uint8_t> assignment) const {
  const auto tour = tsp::decode_tour(prepared_, assignment);
  if (!tour.has_value()) return std::numeric_limits<double>::infinity();
  return original_.tour_length(*tour);
}

}  // namespace qross::surrogate
