#include "surrogate/model.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "nn/loss.hpp"

namespace qross::surrogate {

namespace {

std::vector<std::size_t> layer_sizes(std::size_t inputs, std::size_t hidden,
                                     std::size_t depth, std::size_t outputs) {
  std::vector<std::size_t> sizes{inputs};
  for (std::size_t i = 0; i < depth; ++i) sizes.push_back(hidden);
  sizes.push_back(outputs);
  return sizes;
}

}  // namespace

SolverSurrogate::SolverSurrogate(SurrogateConfig config)
    : config_(std::move(config)) {
  QROSS_REQUIRE(config_.hidden_units >= 1, "hidden units must be positive");
  QROSS_REQUIRE(config_.hidden_layers >= 1, "hidden layers must be positive");
}

SolverSurrogate::SolverSurrogate(const SolverSurrogate& other)
    : config_(other.config_),
      trained_(other.trained_),
      input_standardizer_(other.input_standardizer_),
      energy_standardizer_(other.energy_standardizer_),
      pf_net_(other.pf_net_ ? std::make_unique<nn::Mlp>(*other.pf_net_)
                            : nullptr),
      energy_net_(other.energy_net_
                      ? std::make_unique<nn::Mlp>(*other.energy_net_)
                      : nullptr) {}

SolverSurrogate& SolverSurrogate::operator=(const SolverSurrogate& other) {
  if (this != &other) *this = SolverSurrogate(other);
  return *this;
}

std::pair<nn::TrainHistory, nn::TrainHistory> SolverSurrogate::train(
    const Dataset& dataset) {
  QROSS_REQUIRE(dataset.rows.size() >= 8, "dataset too small to train on");

  // Assemble raw input rows [features..., log A] and fit the standardiser.
  const std::size_t input_dim = kNumTspFeatures + 1;
  std::vector<std::vector<double>> raw_inputs;
  raw_inputs.reserve(dataset.rows.size());
  std::vector<std::vector<double>> raw_energies;
  raw_energies.reserve(dataset.rows.size());
  for (const auto& row : dataset.rows) {
    QROSS_REQUIRE(row.scale_anchor > 0.0, "non-positive scale anchor");
    std::vector<double> input(row.features.begin(), row.features.end());
    input.push_back(transform_relaxation(row.relaxation_parameter));
    raw_inputs.push_back(std::move(input));
    raw_energies.push_back({row.energy_avg / row.scale_anchor,
                            row.energy_std / row.scale_anchor});
  }
  input_standardizer_.fit(raw_inputs);
  energy_standardizer_.fit(raw_energies);

  nn::Matrix inputs(dataset.rows.size(), input_dim);
  nn::Matrix pf_targets(dataset.rows.size(), 1);
  nn::Matrix energy_targets(dataset.rows.size(), 2);
  for (std::size_t r = 0; r < dataset.rows.size(); ++r) {
    const auto standardized = input_standardizer_.transform(raw_inputs[r]);
    std::copy(standardized.begin(), standardized.end(), inputs.row(r).begin());
    pf_targets(r, 0) = dataset.rows[r].pf;
    const auto e = energy_standardizer_.transform(raw_energies[r]);
    energy_targets(r, 0) = e[0];
    energy_targets(r, 1) = e[1];
  }

  pf_net_ = std::make_unique<nn::Mlp>(
      layer_sizes(input_dim, config_.hidden_units, config_.hidden_layers, 1),
      nn::Activation::kReLU, derive_seed(config_.seed, 1));
  energy_net_ = std::make_unique<nn::Mlp>(
      layer_sizes(input_dim, config_.hidden_units, config_.hidden_layers, 2),
      nn::Activation::kReLU, derive_seed(config_.seed, 2));

  const nn::BceWithLogitsLoss bce;
  const nn::HuberLoss huber(config_.huber_delta);
  auto pf_history = nn::train_mlp(*pf_net_, inputs, pf_targets, bce,
                                  config_.pf_training);
  auto energy_history = nn::train_mlp(*energy_net_, inputs, energy_targets,
                                      huber, config_.energy_training);
  trained_ = true;
  return {std::move(pf_history), std::move(energy_history)};
}

std::pair<nn::TrainHistory, nn::TrainHistory> SolverSurrogate::fine_tune(
    const Dataset& dataset, std::size_t max_epochs, double learning_rate) {
  QROSS_REQUIRE(trained_, "fine_tune requires a trained surrogate");
  QROSS_REQUIRE(dataset.rows.size() >= 2, "dataset too small to adapt on");

  nn::Matrix inputs(dataset.rows.size(), kNumTspFeatures + 1);
  nn::Matrix pf_targets(dataset.rows.size(), 1);
  nn::Matrix energy_targets(dataset.rows.size(), 2);
  for (std::size_t r = 0; r < dataset.rows.size(); ++r) {
    const auto& row = dataset.rows[r];
    QROSS_REQUIRE(row.scale_anchor > 0.0, "non-positive scale anchor");
    const auto standardized =
        make_input(row.features, row.relaxation_parameter);
    std::copy(standardized.begin(), standardized.end(), inputs.row(r).begin());
    pf_targets(r, 0) = row.pf;
    const auto e = energy_standardizer_.transform(std::vector<double>{
        row.energy_avg / row.scale_anchor, row.energy_std / row.scale_anchor});
    energy_targets(r, 0) = e[0];
    energy_targets(r, 1) = e[1];
  }

  nn::TrainConfig tune_config;
  tune_config.max_epochs = max_epochs;
  tune_config.patience = max_epochs;
  tune_config.adam.learning_rate = learning_rate;
  tune_config.validation_fraction =
      dataset.rows.size() >= 16 ? 0.15 : 0.0;
  tune_config.seed = derive_seed(config_.seed, 0xF17E);

  const nn::BceWithLogitsLoss bce;
  const nn::HuberLoss huber(config_.huber_delta);
  auto pf_history =
      nn::train_mlp(*pf_net_, inputs, pf_targets, bce, tune_config);
  auto energy_history =
      nn::train_mlp(*energy_net_, inputs, energy_targets, huber, tune_config);
  return {std::move(pf_history), std::move(energy_history)};
}

std::vector<double> SolverSurrogate::make_input(
    const std::array<double, kNumTspFeatures>& features, double a) const {
  std::vector<double> input(features.begin(), features.end());
  input.push_back(transform_relaxation(a));
  return input_standardizer_.transform(input);
}

SurrogatePrediction SolverSurrogate::predict(
    const std::array<double, kNumTspFeatures>& features, double anchor,
    double a) const {
  return predict_sweep(features, anchor, std::array<double, 1>{a}).front();
}

std::vector<SurrogatePrediction> SolverSurrogate::predict_sweep(
    const std::array<double, kNumTspFeatures>& features, double anchor,
    std::span<const double> a_values) const {
  QROSS_REQUIRE(trained_, "surrogate not trained");
  QROSS_REQUIRE(anchor > 0.0, "anchor must be positive");
  nn::Matrix batch(a_values.size(), kNumTspFeatures + 1);
  for (std::size_t r = 0; r < a_values.size(); ++r) {
    const auto input = make_input(features, a_values[r]);
    std::copy(input.begin(), input.end(), batch.row(r).begin());
  }
  const nn::Matrix pf_logits = pf_net_->predict(batch);
  const nn::Matrix energies = energy_net_->predict(batch);
  std::vector<SurrogatePrediction> out(a_values.size());
  for (std::size_t r = 0; r < a_values.size(); ++r) {
    out[r].pf = nn::sigmoid(pf_logits(r, 0));
    const double eavg =
        energy_standardizer_.inverse_dim(0, energies(r, 0)) * anchor;
    const double estd =
        energy_standardizer_.inverse_dim(1, energies(r, 1)) * anchor;
    out[r].energy_avg = eavg;
    out[r].energy_std = std::max(estd, 1e-9 * anchor);
  }
  return out;
}

std::vector<SurrogatePrediction> SolverSurrogate::predict_batch(
    std::span<const SurrogateRequest> requests) const {
  QROSS_REQUIRE(trained_, "surrogate not trained");
  if (requests.empty()) return {};
  nn::Matrix batch(requests.size(), kNumTspFeatures + 1);
  // Standardise straight into the batch matrix (same arithmetic as
  // make_input, without the two per-row heap allocations — at batch sizes
  // the input assembly otherwise rivals the forward pass itself).
  std::array<double, kNumTspFeatures + 1> raw;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    QROSS_REQUIRE(requests[r].anchor > 0.0, "anchor must be positive");
    std::copy(requests[r].features.begin(), requests[r].features.end(),
              raw.begin());
    raw.back() = transform_relaxation(requests[r].a);
    input_standardizer_.transform_into(raw, batch.row(r));
  }
  const nn::Matrix pf_logits = pf_net_->predict(batch);
  const nn::Matrix energies = energy_net_->predict(batch);
  std::vector<SurrogatePrediction> out(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const double anchor = requests[r].anchor;
    out[r].pf = nn::sigmoid(pf_logits(r, 0));
    const double eavg =
        energy_standardizer_.inverse_dim(0, energies(r, 0)) * anchor;
    const double estd =
        energy_standardizer_.inverse_dim(1, energies(r, 1)) * anchor;
    out[r].energy_avg = eavg;
    out[r].energy_std = std::max(estd, 1e-9 * anchor);
  }
  return out;
}

void SolverSurrogate::save(std::ostream& os) const {
  QROSS_REQUIRE(trained_, "cannot save untrained surrogate");
  os << "solver_surrogate_v1\n";
  input_standardizer_.save(os);
  energy_standardizer_.save(os);
  pf_net_->save(os);
  energy_net_->save(os);
}

SolverSurrogate SolverSurrogate::load(std::istream& is) {
  std::string magic;
  QROSS_REQUIRE(static_cast<bool>(is >> magic) && magic == "solver_surrogate_v1",
                "bad surrogate header");
  SolverSurrogate surrogate;
  surrogate.input_standardizer_ = Standardizer::load(is);
  surrogate.energy_standardizer_ = Standardizer::load(is);
  surrogate.pf_net_ = std::make_unique<nn::Mlp>(nn::Mlp::load(is));
  surrogate.energy_net_ = std::make_unique<nn::Mlp>(nn::Mlp::load(is));
  surrogate.trained_ = true;
  return surrogate;
}

}  // namespace qross::surrogate
