#pragma once

// Surrogate training data (paper §3.3 "Data Preparation").
//
// Each row records one solver call: the instance's feature vector, the
// relaxation parameter A, and the measured batch statistics (Pf, Eavg,
// Estd).  The builder sweeps A adaptively per instance so that the sigmoid
// slope {A : 0 < Pf < 1} is densely covered and both plateaus contribute a
// sizable number of samples (the paper's overfitting guard).

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "problems/tsp/instance.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/solver.hpp"
#include "surrogate/features.hpp"
#include "surrogate/pipeline.hpp"

namespace qross::surrogate {

struct DatasetRow {
  std::size_t instance_id = 0;
  std::array<double, kNumTspFeatures> features{};
  double scale_anchor = 1.0;  ///< 2-opt tour length of the prepared instance
  double relaxation_parameter = 0.0;
  double pf = 0.0;
  double energy_avg = 0.0;
  double energy_std = 0.0;
};

struct Dataset {
  std::vector<DatasetRow> rows;

  /// Writes the rows as CSV.  Pass include_header = false when appending to
  /// an existing corpus file (the serving flywheel: TuneService appends one
  /// row per completed-session trial).
  void save_csv(std::ostream& os, bool include_header = true) const;
  static Dataset load_csv(std::istream& is);
};

struct SweepConfig {
  /// Points sampled on the sigmoid slope {A : 0 < Pf < 1}.
  std::size_t slope_points = 10;
  /// Points sampled on each plateau (Pf == 0 and Pf == 1 regions).
  std::size_t plateau_points = 3;
  /// Initial guess multiplier: the bound search starts from
  /// `initial_guess_factor * mean_distance` of the prepared instance.
  double initial_guess_factor = 1.0;
  /// Hard bounds on the A search (prepared-instance units).
  double a_min = 1e-3;
  double a_max = 1e4;
  /// Maximum doubling/halving steps in the bound search.
  std::size_t max_bound_steps = 24;
  /// Geometric bisection probes that tighten the bracket after the
  /// doubling/halving phase.  Strong solvers (e.g. the Qbsolv hybrid) have
  /// very sharp Pf transitions; without refinement the slope samples all
  /// land on the plateaus and the dataset never sees fractional Pf.
  std::size_t bisection_steps = 4;
};

/// Result of the A-bound search: the bracket of the sigmoid slope.
struct SlopeBounds {
  double a_left = 0.0;   ///< largest probed A with Pf == 0
  double a_right = 0.0;  ///< smallest probed A with Pf == 1
  std::vector<solvers::SolverSample> probes;  ///< all samples taken
};

/// Finds [a_left, a_right] bracketing the Pf transition by doubling/halving
/// (paper Algorithm 1, lines 1-2).  Uses `runner` (one solver call per
/// probe).
SlopeBounds find_slope_bounds(solvers::BatchRunner& runner,
                              double initial_guess, const SweepConfig& config);

/// Full sweep of one instance: bound search, then uniform slope samples and
/// plateau samples.  Returns all solver samples taken (each one dataset row).
std::vector<solvers::SolverSample> sweep_instance(
    solvers::BatchRunner& runner, double initial_guess,
    const SweepConfig& config);

/// Builds a training dataset over `instances` with the given solver.
/// `solve_options.seed` is re-derived per instance.  Emits progress lines to
/// stderr when `verbose`.
Dataset build_dataset(const std::vector<tsp::TspInstance>& instances,
                      solvers::SolverPtr solver,
                      const solvers::SolveOptions& solve_options,
                      const SweepConfig& sweep_config, bool verbose = false);

}  // namespace qross::surrogate
