#pragma once

// TSP instance preparation pipeline (paper §3.3 + appendix E).
//
// Before an instance reaches the QUBO builder it is
//   1. MVODM-shifted (variance-minimised distance matrix, tour-invariant),
//   2. rescaled so its mean off-diagonal distance hits a common target —
//      this moves every instance's useful relaxation-parameter range onto
//      the same order of magnitude, which is what lets one surrogate (and
//      the paper's fixed A in [1, 100] search box) serve all instances.
//
// Fitness values measured on the prepared instance map back to the original
// metric via `to_original_length`, and decoded tours are re-scored on the
// original matrix (appendix E post-processing).

#include <memory>

#include "problems/tsp/instance.hpp"
#include "problems/tsp/preprocess.hpp"
#include "qubo/builder.hpp"

namespace qross::surrogate {

/// Mean off-diagonal distance every prepared instance is scaled to.  25
/// places the feasibility transition of the scaled-down instances well
/// inside the paper's A-in-[1, 100] search box (calibrated with
/// bench_fig1_landscape).
inline constexpr double kTargetMeanDistance = 25.0;

class PreparedTspInstance {
 public:
  explicit PreparedTspInstance(const tsp::TspInstance& original,
                               double target_mean_distance = kTargetMeanDistance);

  const tsp::TspInstance& original() const { return original_; }
  const tsp::TspInstance& prepared() const { return prepared_; }

  /// The constrained problem built from the prepared instance.
  const qubo::ConstrainedProblem& problem() const { return *problem_; }

  /// Maps a tour length in prepared units back to the original metric.
  double to_original_length(double prepared_length) const;

  /// Re-scores a decoded assignment's tour on the *original* matrix
  /// (appendix E); returns +inf if the assignment is infeasible.
  double original_tour_length(std::span<const std::uint8_t> assignment) const;

  double scale_factor() const { return scale_; }
  double pi_sum() const { return pi_sum_; }
  const tsp::MvodmResult& mvodm() const { return mvodm_; }

 private:
  tsp::TspInstance original_;
  tsp::MvodmResult mvodm_;
  double scale_ = 1.0;
  double pi_sum_ = 0.0;
  tsp::TspInstance prepared_;
  std::shared_ptr<const qubo::ConstrainedProblem> problem_;
};

}  // namespace qross::surrogate
