#pragma once

// SurrogateEvaluator — the prediction-only view of the solver surrogate.
//
// The search strategies (MFS/PBS grid scans + Brent refinement) only ever
// *query* the surrogate; training, persistence and fine-tuning are concerns
// of the concrete SolverSurrogate.  Splitting the query surface into an
// abstract interface lets a serving layer substitute a different evaluation
// path — in particular the cross-session batching combiner, which merges
// single-row predictions from concurrent tuner sessions into one nn::Matrix
// forward pass — without the strategies noticing.  Implementations must be
// bit-identical to SolverSurrogate::predict/predict_sweep for the same
// inputs: tuning determinism (same seed → same probed-A sequence) depends
// on it.

#include <array>
#include <span>
#include <vector>

#include "surrogate/features.hpp"

namespace qross::surrogate {

struct SurrogatePrediction {
  double pf = 0.0;          ///< probability of feasibility, in [0, 1]
  double energy_avg = 0.0;  ///< batch-mean objective energy (instance units)
  double energy_std = 0.0;  ///< batch objective stddev, >= 0
};

/// One prediction row: an instance (features + energy-scale anchor) probed
/// at relaxation parameter `a`.  Rows from different instances may share a
/// single forward pass — each row standardises and de-normalises with its
/// own anchor.
struct SurrogateRequest {
  std::array<double, kNumTspFeatures> features{};
  double anchor = 1.0;
  double a = 1.0;
};

class SurrogateEvaluator {
 public:
  virtual ~SurrogateEvaluator() = default;

  virtual bool is_trained() const = 0;

  /// Predicts (Pf, Eavg, Estd) at a single relaxation parameter.
  virtual SurrogatePrediction predict(
      const std::array<double, kNumTspFeatures>& features, double anchor,
      double a) const = 0;

  /// Vectorised prediction over a grid of A values for one instance.
  virtual std::vector<SurrogatePrediction> predict_sweep(
      const std::array<double, kNumTspFeatures>& features, double anchor,
      std::span<const double> a_values) const = 0;
};

}  // namespace qross::surrogate
