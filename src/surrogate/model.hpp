#pragma once

// The solver surrogate (paper §3.2, appendix G).
//
// Two small MLPs share an input layout of [standardised instance features,
// transformed relaxation parameter]:
//
//  * the Pf head outputs a logit whose sigmoid is the probability of
//    feasibility, trained with BCE (targets are empirical batch Pf values);
//  * the energy head outputs (Eavg, Estd) in anchor-normalised standardised
//    space, trained with Huber loss (the paper's outlier-robust choice).
//
// "Since the nature of Pf is different from that of Eavg and Estd, we train
// these targets separately" — hence two networks rather than one trunk.
//
// Energies are divided by the instance's scale anchor (2-opt tour length)
// before standardisation so one surrogate serves instances of different
// sizes and scales; predictions are mapped back on the way out.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>

#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/evaluator.hpp"
#include "surrogate/features.hpp"
#include "surrogate/normalizer.hpp"

namespace qross::surrogate {

struct SurrogateConfig {
  std::size_t hidden_units = 48;
  std::size_t hidden_layers = 2;
  nn::TrainConfig pf_training;
  nn::TrainConfig energy_training;
  double huber_delta = 0.5;
  std::uint64_t seed = 23;

  SurrogateConfig() {
    // The Pf head needs a generous budget: the sigmoid slope is a minority
    // of the samples and under-training shows up as a systematic shift of
    // the predicted transition (calibrated on the analytic-solver tests).
    // Early stopping is effectively disabled for the Pf head: its validation
    // BCE is dominated by plateau samples and flatlines long before the
    // slope region is fit, so a short patience truncates training while the
    // predicted transition is still shifted.
    pf_training.max_epochs = 1500;
    pf_training.patience = 1500;
    pf_training.adam.learning_rate = 1e-2;
    energy_training.max_epochs = 600;
    energy_training.patience = 100;
    energy_training.adam.learning_rate = 1e-2;
  }
};

class SolverSurrogate final : public SurrogateEvaluator {
 public:
  explicit SolverSurrogate(SurrogateConfig config = {});

  /// Deep copy (the nets are value types behind unique_ptr): a trained
  /// surrogate can be handed by value to services and sessions — e.g. a
  /// TuneService cloning one tuner with different solve options.
  SolverSurrogate(const SolverSurrogate& other);
  SolverSurrogate& operator=(const SolverSurrogate& other);
  SolverSurrogate(SolverSurrogate&&) noexcept = default;
  SolverSurrogate& operator=(SolverSurrogate&&) noexcept = default;

  /// Fits normalisers and both heads on `dataset`.  Returns the two training
  /// histories (Pf head, energy head).
  std::pair<nn::TrainHistory, nn::TrainHistory> train(const Dataset& dataset);

  /// Continues training an already-trained surrogate on new rows (the
  /// paper's "simple adaptation methods": when instances drift out of the
  /// original distribution, fresh solver observations refresh the model
  /// without refitting from scratch).  Normalisers are kept frozen so old
  /// and new data share one input space; use a reduced epoch budget.
  std::pair<nn::TrainHistory, nn::TrainHistory> fine_tune(
      const Dataset& dataset, std::size_t max_epochs = 200,
      double learning_rate = 2e-3);

  bool is_trained() const override { return trained_; }

  /// Predicts (Pf, Eavg, Estd) for an instance described by `features` and
  /// `anchor` at relaxation parameter `a` (prepared-instance units, > 0).
  SurrogatePrediction predict(
      const std::array<double, kNumTspFeatures>& features, double anchor,
      double a) const override;

  /// Vectorised prediction over a grid of A values (amortises the feature
  /// standardisation; used by the search strategies).
  std::vector<SurrogatePrediction> predict_sweep(
      const std::array<double, kNumTspFeatures>& features, double anchor,
      std::span<const double> a_values) const override;

  /// Multi-request forward pass: every row carries its own instance
  /// (features + anchor) and relaxation parameter, so prediction rows from
  /// unrelated tuner sessions share one nn::Matrix pass through both heads.
  /// Row r of the result is bit-identical to
  /// `predict(requests[r].features, requests[r].anchor, requests[r].a)` —
  /// the matrix kernels accumulate each output row independently in a fixed
  /// order, so batch composition cannot perturb any row.
  std::vector<SurrogatePrediction> predict_batch(
      std::span<const SurrogateRequest> requests) const;

  void save(std::ostream& os) const;
  static SolverSurrogate load(std::istream& is);

 private:
  std::vector<double> make_input(
      const std::array<double, kNumTspFeatures>& features, double a) const;

  SurrogateConfig config_;
  bool trained_ = false;
  Standardizer input_standardizer_;   // over [features..., log A]
  Standardizer energy_standardizer_;  // over [Eavg/anchor, Estd/anchor]
  std::unique_ptr<nn::Mlp> pf_net_;
  std::unique_ptr<nn::Mlp> energy_net_;
};

}  // namespace qross::surrogate
