#pragma once

// BatchedSurrogate — cross-session surrogate inference combiner.
//
// Concurrent tuner sessions each fire long runs of small predictions (the
// MFS/PBS grid scans are 96-128 rows, the Brent refinements single rows) at
// the shared surrogate.  One-at-a-time that is thousands of 1-row nn::Matrix
// passes; the matrix path amortises per-pass overhead across rows, so rows
// from *different* sessions should share a pass whenever they are in flight
// together.
//
// This combiner implements the classic leader/follower batching protocol:
// every caller enqueues its rows; the first caller to find no leader active
// becomes the leader and drains the queue in a loop — each drain combines
// all currently queued rows into one SolverSurrogate::predict_batch call —
// while later arrivals park on a condition variable until their rows are
// filled in.  There is no timed batching window: a lone caller pays one
// uncontended mutex hop, and batching emerges exactly when concurrency
// exists (the leader's pass runs unlocked, so followers pile up behind it).
//
// Correctness: predict_batch accumulates each output row independently in a
// fixed order, so results are bit-identical to direct predict/predict_sweep
// calls regardless of which rows happen to share a pass — concurrent tuning
// sessions stay exactly as deterministic as in-process ones.

#include <condition_variable>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"
#include "surrogate/model.hpp"

namespace qross::surrogate {

class BatchedSurrogate final : public SurrogateEvaluator {
 public:
  /// `inner` is borrowed and must outlive the combiner.
  explicit BatchedSurrogate(const SolverSurrogate& inner) : inner_(&inner) {}

  BatchedSurrogate(const BatchedSurrogate&) = delete;
  BatchedSurrogate& operator=(const BatchedSurrogate&) = delete;

  bool is_trained() const override { return inner_->is_trained(); }

  SurrogatePrediction predict(
      const std::array<double, kNumTspFeatures>& features, double anchor,
      double a) const override;

  std::vector<SurrogatePrediction> predict_sweep(
      const std::array<double, kNumTspFeatures>& features, double anchor,
      std::span<const double> a_values) const override;

  struct Stats {
    std::uint64_t calls = 0;   ///< predict / predict_sweep entries
    std::uint64_t rows = 0;    ///< total prediction rows requested
    std::uint64_t passes = 0;  ///< forward passes actually executed
    /// Rows that shared a pass with at least one other call — the measure
    /// of how much cross-session combining actually happened.
    std::uint64_t combined_rows = 0;
    std::uint64_t max_rows_per_pass = 0;
  };
  Stats stats() const EXCLUDES(mutex_);

 private:
  struct Pending {
    std::span<const SurrogateRequest> rows;
    SurrogatePrediction* out = nullptr;
    bool done = false;
    std::exception_ptr error;
  };

  /// Enqueues `rows`, runs or waits for a combined pass, fills `out`.
  /// The leader's predict_batch pass runs with mutex_ RELEASED (that is
  /// what lets followers pile up behind it); the scoped lock's
  /// unlock()/lock() hand-off keeps the analysis tracking the hold state.
  void evaluate(std::span<const SurrogateRequest> rows,
                SurrogatePrediction* out) const EXCLUDES(mutex_);

  const SolverSurrogate* inner_;
  mutable Mutex mutex_;
  mutable std::condition_variable cv_;
  /// Queued entries point at callers' stack frames; a Pending's fields are
  /// written under mutex_ until `done` is published.
  mutable std::vector<Pending*> queue_ GUARDED_BY(mutex_);
  mutable bool leader_active_ GUARDED_BY(mutex_) = false;
  mutable Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace qross::surrogate
