#include "surrogate/normalizer.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace qross::surrogate {

void Standardizer::fit(const std::vector<std::vector<double>>& rows) {
  QROSS_REQUIRE(!rows.empty(), "cannot fit standardizer on empty data");
  const std::size_t dim = rows.front().size();
  QROSS_REQUIRE(dim >= 1, "rows must be non-empty");
  std::vector<RunningStats> stats(dim);
  for (const auto& row : rows) {
    QROSS_REQUIRE(row.size() == dim, "ragged rows");
    for (std::size_t c = 0; c < dim; ++c) stats[c].add(row[c]);
  }
  means_.resize(dim);
  stds_.resize(dim);
  for (std::size_t c = 0; c < dim; ++c) {
    means_[c] = stats[c].mean();
    const double s = stats[c].stddev();
    stds_[c] = s > 1e-12 ? s : 1.0;
  }
}

std::vector<double> Standardizer::transform(std::span<const double> row) const {
  QROSS_REQUIRE(is_fitted(), "standardizer not fitted");
  QROSS_REQUIRE(row.size() == means_.size(), "dimension mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - means_[c]) / stds_[c];
  }
  return out;
}

void Standardizer::transform_into(std::span<const double> row,
                                  std::span<double> out) const {
  QROSS_REQUIRE(is_fitted(), "standardizer not fitted");
  QROSS_REQUIRE(row.size() == means_.size() && out.size() == row.size(),
                "dimension mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - means_[c]) / stds_[c];
  }
}

std::vector<double> Standardizer::inverse(std::span<const double> row) const {
  QROSS_REQUIRE(is_fitted(), "standardizer not fitted");
  QROSS_REQUIRE(row.size() == means_.size(), "dimension mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = row[c] * stds_[c] + means_[c];
  }
  return out;
}

double Standardizer::transform_dim(std::size_t dim, double value) const {
  QROSS_REQUIRE(dim < means_.size(), "dimension out of range");
  return (value - means_[dim]) / stds_[dim];
}

double Standardizer::inverse_dim(std::size_t dim, double value) const {
  QROSS_REQUIRE(dim < means_.size(), "dimension out of range");
  return value * stds_[dim] + means_[dim];
}

void Standardizer::save(std::ostream& os) const {
  os << "standardizer " << means_.size() << "\n";
  os.precision(17);
  for (double m : means_) os << m << ' ';
  os << "\n";
  for (double s : stds_) os << s << ' ';
  os << "\n";
}

Standardizer Standardizer::load(std::istream& is) {
  std::string magic;
  std::size_t dim = 0;
  QROSS_REQUIRE(static_cast<bool>(is >> magic >> dim) && magic == "standardizer",
                "bad standardizer header");
  Standardizer s;
  s.means_.resize(dim);
  s.stds_.resize(dim);
  for (double& m : s.means_) {
    QROSS_REQUIRE(static_cast<bool>(is >> m), "bad standardizer means");
  }
  for (double& sd : s.stds_) {
    QROSS_REQUIRE(static_cast<bool>(is >> sd), "bad standardizer stds");
  }
  return s;
}

double transform_relaxation(double a) {
  QROSS_REQUIRE(a > 0.0, "relaxation parameter must be positive");
  return std::log(a);
}

double inverse_transform_relaxation(double t) { return std::exp(t); }

}  // namespace qross::surrogate
