#pragma once

// Graph-level TSP feature extraction (paper appendix C/G substitution).
//
// The paper aggregates edge-level features from a pre-trained graph
// convolutional network into graph-level vectors.  Offline we substitute a
// deterministic, hand-crafted graph descriptor computed from the distance
// matrix alone (no coordinates required): distance moments and quantiles,
// nearest-neighbour structure, minimum-spanning-tree statistics, and cheap
// construction-heuristic tour lengths.  These capture the "common structure
// of instances of a problem" that the surrogate conditions on, and ablation
// bench `bench_ablation_features` quantifies their contribution.

#include <array>
#include <vector>

#include "problems/tsp/instance.hpp"

namespace qross::surrogate {

/// Number of entries in the feature vector (see extract_features).
inline constexpr std::size_t kNumTspFeatures = 24;

/// Deterministic graph-level descriptor of a TSP instance.
/// Layout (indices):
///   0  num_cities
///   1  log(num_cities)
///   2  mean pairwise distance
///   3  stddev of pairwise distances
///   4  min positive distance
///   5  max distance
///   6  coefficient of variation (std/mean)
///   7-11  distance quantiles 0.1 / 0.25 / 0.5 / 0.75 / 0.9
///   12 mean nearest-neighbour distance
///   13 stddev of nearest-neighbour distances
///   14 mean second-nearest-neighbour distance
///   15 MST total length
///   16 MST mean edge length
///   17 MST edge-length stddev
///   18 greedy (nearest-neighbour) tour length
///   19 2-opt-improved greedy tour length
///   20 greedy / 2-opt ratio (local-optimality hardness proxy)
///   21 mean per-city eccentricity (mean distance from each city)
///   22 stddev of per-city eccentricities (cluster structure indicator)
///   23 mean-NN / mean-distance ratio (density contrast)
std::array<double, kNumTspFeatures> extract_features(
    const tsp::TspInstance& instance);

/// The feature used to anchor energy scales across instances: the 2-opt
/// greedy tour length (index 19).  Energies are divided by this before
/// standardisation so the surrogate transfers across instance sizes.
double scale_anchor(const std::array<double, kNumTspFeatures>& features);

/// Human-readable feature names, aligned with extract_features indices.
const std::vector<std::string>& feature_names();

}  // namespace qross::surrogate
