#include "surrogate/features.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "problems/tsp/heuristics.hpp"

namespace qross::surrogate {

namespace {

/// Prim's algorithm over the complete graph, O(n^2).
std::vector<double> mst_edge_lengths(const tsp::TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  if (n < 2) return {};
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<double> edges;
  edges.reserve(n - 1);
  in_tree[0] = true;
  for (std::size_t v = 1; v < n; ++v) best[v] = instance.distance(0, v);
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t pick = n;
    double pick_cost = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < pick_cost) {
        pick_cost = best[v];
        pick = v;
      }
    }
    QROSS_ASSERT(pick < n);
    in_tree[pick] = true;
    edges.push_back(pick_cost);
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v]) best[v] = std::min(best[v], instance.distance(pick, v));
    }
  }
  return edges;
}

}  // namespace

std::array<double, kNumTspFeatures> extract_features(
    const tsp::TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  std::array<double, kNumTspFeatures> f{};
  f[0] = static_cast<double>(n);
  f[1] = std::log(static_cast<double>(n));

  // Pairwise distance distribution.
  std::vector<double> dists;
  dists.reserve(n * (n - 1) / 2);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) dists.push_back(instance.distance(u, v));
  }
  if (dists.empty()) dists.push_back(0.0);
  const SampleSummary ds = summarize(dists);
  f[2] = ds.mean;
  f[3] = ds.stddev;
  f[4] = instance.min_positive_distance();
  f[5] = ds.max;
  f[6] = ds.mean > 0.0 ? ds.stddev / ds.mean : 0.0;
  const std::array<double, 5> qlevels{0.1, 0.25, 0.5, 0.75, 0.9};
  const auto qs = quantiles(dists, qlevels);
  for (std::size_t i = 0; i < qs.size(); ++i) f[7 + i] = qs[i];

  // Nearest-neighbour structure.
  std::vector<double> nn1(n, 0.0), nn2(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    double first = std::numeric_limits<double>::infinity();
    double second = std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      const double d = instance.distance(u, v);
      if (d < first) {
        second = first;
        first = d;
      } else if (d < second) {
        second = d;
      }
    }
    nn1[u] = std::isfinite(first) ? first : 0.0;
    nn2[u] = std::isfinite(second) ? second : nn1[u];
  }
  const SampleSummary nns = summarize(nn1);
  f[12] = nns.mean;
  f[13] = nns.stddev;
  f[14] = mean(nn2);

  // Minimum spanning tree.
  const auto mst = mst_edge_lengths(instance);
  if (!mst.empty()) {
    const SampleSummary ms = summarize(mst);
    f[15] = ms.mean * static_cast<double>(mst.size());
    f[16] = ms.mean;
    f[17] = ms.stddev;
  }

  // Construction-heuristic tour lengths (cheap scale anchors).
  if (n >= 2) {
    const tsp::Tour greedy = tsp::nearest_neighbor_tour(instance, 0);
    const double greedy_len = instance.tour_length(greedy);
    const tsp::Tour improved = tsp::two_opt(instance, greedy, 8);
    const double improved_len = instance.tour_length(improved);
    f[18] = greedy_len;
    f[19] = improved_len;
    f[20] = improved_len > 0.0 ? greedy_len / improved_len : 1.0;
  }

  // Eccentricity profile.
  std::vector<double> ecc(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    double sum = 0.0;
    for (std::size_t v = 0; v < n; ++v) sum += instance.distance(u, v);
    ecc[u] = n > 1 ? sum / static_cast<double>(n - 1) : 0.0;
  }
  const SampleSummary es = summarize(ecc);
  f[21] = es.mean;
  f[22] = es.stddev;
  f[23] = ds.mean > 0.0 ? nns.mean / ds.mean : 0.0;
  return f;
}

double scale_anchor(const std::array<double, kNumTspFeatures>& features) {
  // 2-opt tour length; falls back to the mean distance for degenerate cases.
  return features[19] > 0.0 ? features[19] : std::max(features[2], 1.0);
}

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "num_cities",    "log_num_cities", "dist_mean",     "dist_std",
      "dist_min_pos",  "dist_max",       "dist_cv",       "dist_q10",
      "dist_q25",      "dist_q50",       "dist_q75",      "dist_q90",
      "nn1_mean",      "nn1_std",        "nn2_mean",      "mst_total",
      "mst_edge_mean", "mst_edge_std",   "greedy_len",    "two_opt_len",
      "greedy_ratio",  "ecc_mean",       "ecc_std",       "nn_density"};
  return names;
}

}  // namespace qross::surrogate
