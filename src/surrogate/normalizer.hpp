#pragma once

// Input/target normalisation (paper §3.3 "Data Preparation"): per-dimension
// standardisation of features, log transform of the relaxation parameter,
// and scale-anchored energy normalisation, all fit on the training split
// only and serialisable alongside the model.

#include <iosfwd>
#include <span>
#include <vector>

namespace qross::surrogate {

/// Per-dimension z-score standardiser: x' = (x - mean) / std.
class Standardizer {
 public:
  Standardizer() = default;

  /// Fits mean/std per column; rows = samples.  Constant columns get
  /// std == 1 so they pass through centred.
  void fit(const std::vector<std::vector<double>>& rows);

  bool is_fitted() const { return !means_.empty(); }
  std::size_t dim() const { return means_.size(); }

  std::vector<double> transform(std::span<const double> row) const;
  std::vector<double> inverse(std::span<const double> row) const;

  /// Allocation-free transform into a caller-provided row (same arithmetic
  /// as transform); the batched prediction path standardises thousands of
  /// rows per pass directly into the input matrix.
  void transform_into(std::span<const double> row, std::span<double> out) const;

  /// Single-dimension helpers (for scalar targets).
  double transform_dim(std::size_t dim, double value) const;
  double inverse_dim(std::size_t dim, double value) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

  void save(std::ostream& os) const;
  static Standardizer load(std::istream& is);

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

/// The relaxation parameter transform used for the surrogate input:
/// a = log(A) (paper: "shifting or scaling moves A of different problems to
/// the same order of magnitude").  A must be positive.
double transform_relaxation(double a);
double inverse_transform_relaxation(double t);

}  // namespace qross::surrogate
