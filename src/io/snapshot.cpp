#include "io/snapshot.hpp"

namespace qross::io {

namespace {

// Framing overhead per record: u32 size + u32 type + u64 checksum.
constexpr std::size_t kRecordHeaderBytes = 16;
// A length field beyond this is corruption, not a real record: scanning
// past it would misinterpret gigabytes of garbage as one payload.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;  // 256 MiB
// Decoder sanity bounds — far above any real batch, low enough that a
// corrupt count cannot drive an allocation bomb before the checksum-passed
// payload runs out of bytes.
constexpr std::uint32_t kMaxResults = 1u << 24;
constexpr std::uint32_t kMaxBitsPerResult = 1u << 26;
// QuboModel stores a dense n x n double matrix, so the variable count IS an
// allocation commitment (n = 8192 already means 512 MiB).  Anything above
// this is corruption or abuse — a remote SubmitJob frame must not be able
// to trigger a multi-gigabyte allocation with a 40-byte payload.
constexpr std::uint32_t kMaxModelVars = 1u << 13;

}  // namespace

void write_header(ByteWriter& out) {
  out.raw(kSnapshotMagic);
  out.u32(kFormatVersion);
  out.u32(0);  // flags, reserved
}

HeaderStatus read_header(ByteReader& in, std::uint32_t* version) {
  if (version != nullptr) *version = 0;
  if (in.remaining() < kSnapshotMagic.size() + 8) return HeaderStatus::bad_magic;
  const auto magic = in.raw(kSnapshotMagic.size());
  for (std::size_t i = 0; i < kSnapshotMagic.size(); ++i) {
    if (magic[i] != kSnapshotMagic[i]) return HeaderStatus::bad_magic;
  }
  const std::uint32_t file_version = in.u32();
  in.u32();  // flags, reserved
  if (version != nullptr) *version = file_version;
  if (file_version > kFormatVersion) return HeaderStatus::future_version;
  return HeaderStatus::ok;
}

void write_record(ByteWriter& out, std::uint32_t type,
                  std::span<const std::uint8_t> payload) {
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u32(type);
  out.u64(checksum64(payload));
  out.raw(payload);
}

ScanStats scan_records(
    ByteReader& in,
    const std::function<bool(std::uint32_t type,
                             std::span<const std::uint8_t> payload)>& sink) {
  ScanStats stats;
  while (in.remaining() > 0) {
    if (in.remaining() < kRecordHeaderBytes) {
      stats.truncated = true;  // partial record header at the tail
      break;
    }
    const std::uint32_t size = in.u32();
    const std::uint32_t type = in.u32();
    const std::uint64_t expected = in.u64();
    if (size > kMaxPayloadBytes || size > in.remaining()) {
      // Either the tail of an interrupted append or a corrupt length field;
      // both make everything after this point unframeable.
      stats.truncated = true;
      break;
    }
    const auto payload = in.raw(size);
    if (checksum64(payload) != expected || !sink(type, payload)) {
      ++stats.skipped;
      continue;
    }
    ++stats.records;
  }
  return stats;
}

void encode_batch(ByteWriter& out, const qubo::SolveBatch& batch) {
  out.u32(static_cast<std::uint32_t>(batch.results.size()));
  for (const auto& result : batch.results) {
    out.f64(result.qubo_energy);
    const auto& bits = result.assignment;
    out.u32(static_cast<std::uint32_t>(bits.size()));
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      byte |= static_cast<std::uint8_t>((bits[i] & 1u) << (i & 7));
      if ((i & 7) == 7) {
        out.u8(byte);
        byte = 0;
      }
    }
    if ((bits.size() & 7) != 0) out.u8(byte);
  }
}

qubo::SolveBatch decode_batch(ByteReader& in) {
  qubo::SolveBatch batch;
  const std::uint32_t num_results = in.u32();
  if (num_results > kMaxResults) {
    throw DecodeError("implausible result count: " +
                      std::to_string(num_results));
  }
  batch.results.reserve(num_results);
  for (std::uint32_t k = 0; k < num_results; ++k) {
    qubo::SolveResult result;
    result.qubo_energy = in.f64();
    const std::uint32_t num_bits = in.u32();
    if (num_bits > kMaxBitsPerResult) {
      throw DecodeError("implausible assignment length: " +
                        std::to_string(num_bits));
    }
    const auto packed = in.raw((num_bits + 7) / 8);
    result.assignment.resize(num_bits);
    for (std::uint32_t i = 0; i < num_bits; ++i) {
      result.assignment[i] = (packed[i >> 3] >> (i & 7)) & 1u;
    }
    batch.results.push_back(std::move(result));
  }
  return batch;
}

void encode_model(ByteWriter& out, const qubo::QuboModel& model) {
  out.u32(static_cast<std::uint32_t>(model.num_vars()));
  out.f64(model.offset());
  out.u32(static_cast<std::uint32_t>(model.num_nonzeros()));
  // Canonical order: row-major over the upper triangle, structural nonzeros
  // only — the same walk fingerprint_model takes, so equal fingerprints
  // imply equal encodings.
  for (std::size_t i = 0; i < model.num_vars(); ++i) {
    for (std::size_t j = i; j < model.num_vars(); ++j) {
      const double w = model.coefficient(i, j);
      if (w == 0.0) continue;
      out.u32(static_cast<std::uint32_t>(i));
      out.u32(static_cast<std::uint32_t>(j));
      out.f64(w);
    }
  }
}

qubo::QuboModel decode_model(ByteReader& in) {
  const std::uint32_t num_vars = in.u32();
  if (num_vars > kMaxModelVars) {
    throw DecodeError("implausible model size: " + std::to_string(num_vars));
  }
  qubo::QuboModel model(num_vars);
  model.set_offset(in.f64());
  const std::uint32_t nnz = in.u32();
  // A dense model has at most n(n+1)/2 structural nonzeros; a count beyond
  // that is corruption, and catching it here stops an allocation bomb.
  const std::uint64_t max_nnz =
      static_cast<std::uint64_t>(num_vars) * (num_vars + 1) / 2;
  if (nnz > max_nnz) {
    throw DecodeError("implausible nonzero count: " + std::to_string(nnz));
  }
  for (std::uint32_t k = 0; k < nnz; ++k) {
    const std::uint32_t i = in.u32();
    const std::uint32_t j = in.u32();
    if (i >= num_vars || j >= num_vars || j < i) {
      throw DecodeError("model term index out of range");
    }
    model.add_term(i, j, in.f64());
  }
  return model;
}

}  // namespace qross::io
