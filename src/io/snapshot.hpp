#pragma once

// Versioned, checksummed record framing for QROSS binary snapshots, plus
// the qubo::SolveBatch codec.
//
// File layout (all integers little-endian, see io/binary.hpp):
//
//   header   8 B magic "QROSSNAP", u32 format version, u32 flags (reserved)
//   record*  u32 payload size | u32 record type | u64 checksum64(payload)
//            | payload bytes
//
// The format version is the compatibility contract: a reader rejects files
// from a NEWER version outright (it cannot know what changed) but must keep
// reading every older version it ever shipped.  Record types it does not
// recognise are skipped, so old readers tolerate new record kinds within a
// version.  This framing is deliberately transport-shaped — the planned
// network front end reuses it as its wire encoding.
//
// Corruption tolerance (scan_records): a truncated tail stops the scan
// cleanly; a record whose checksum does not match its payload is skipped
// and the scan resumes at the next frame boundary.  Nothing in this header
// throws on bad input except the raw batch decoder, whose DecodeError the
// scanner's callers are expected to catch (CacheStore does).

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "io/binary.hpp"
#include "qubo/batch.hpp"

namespace qross::io {

inline constexpr std::array<std::uint8_t, 8> kSnapshotMagic = {
    'Q', 'R', 'O', 'S', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Record types.  Values are part of the format: never renumber, only add.
/// Types 1..15 are snapshot records; 16+ are network protocol frames
/// (src/net/ reuses this framing verbatim as its wire encoding, so one
/// scanner/codec layer serves both files and sockets).
enum RecordType : std::uint32_t {
  kRecordCacheEntry = 1,  ///< fingerprint + solve metadata + SolveBatch

  kRecordNetHello = 16,       ///< client → server: protocol version offer
  kRecordNetHelloAck = 17,    ///< server → client: accepted version + limits
  kRecordNetError = 18,       ///< server → client: request or stream error
  kRecordNetSubmitJob = 19,   ///< client → server: solver + model + options
  kRecordNetJobStatus = 20,   ///< server → client: streamed status update
  kRecordNetCancelJob = 21,   ///< client → server: cancel a submitted tag
  kRecordNetResult = 22,      ///< server → client: terminal result + batch
  kRecordNetGetMetrics = 23,  ///< client → server: metrics request
  kRecordNetMetrics = 24,     ///< server → client: service + server counters
  kRecordNetGetTrace = 25,    ///< client → server: trace snapshot request
  kRecordNetTraceDump = 26,   ///< server → client: Chrome trace-event JSON
  kRecordNetGetProm = 27,     ///< client → server: Prometheus text request
  kRecordNetPromText = 28,    ///< server → client: Prometheus exposition
  kRecordNetSubmitTune = 29,  ///< client → server: tuner session request
  kRecordNetTuneStatus = 30,  ///< server → client: streamed per-trial progress
  kRecordNetCancelTune = 31,  ///< client → server: cancel a tune session
  kRecordNetTuneResult = 32,  ///< server → client: terminal session outcome
};

enum class HeaderStatus {
  ok,
  bad_magic,       ///< not a QROSS snapshot (foreign or garbage file)
  future_version,  ///< written by a newer build; refused, not guessed at
};

void write_header(ByteWriter& out);

/// Parses and validates the header, advancing `in` past it on success.
/// `version` (optional) receives the file's version even when rejected as
/// future, so diagnostics can name it.
HeaderStatus read_header(ByteReader& in, std::uint32_t* version = nullptr);

/// Frames `payload` as one record (size, type, checksum, bytes).
void write_record(ByteWriter& out, std::uint32_t type,
                  std::span<const std::uint8_t> payload);

struct ScanStats {
  std::size_t records = 0;  ///< records delivered to the sink
  std::size_t skipped = 0;  ///< checksum mismatches + sink rejections
  bool truncated = false;   ///< the file ended inside a record
};

/// Walks the records after the header (the caller consumes the header via
/// read_header first).  For each well-framed record whose checksum matches,
/// calls sink(type, payload); a sink returning false counts the record as
/// skipped (e.g. its inner payload failed to decode).  Never throws on
/// malformed framing: a bad checksum skips one record, an impossible or
/// truncated length ends the scan with `truncated = true`.
ScanStats scan_records(
    ByteReader& in,
    const std::function<bool(std::uint32_t type,
                             std::span<const std::uint8_t> payload)>& sink);

/// SolveBatch codec.  Assignments are packed 8 bits per byte (LSB first);
/// energies travel as raw IEEE-754 bit patterns, so decode(encode(b)) is
/// bit-identical for canonical 0/1 assignments — the only kind solvers
/// produce (is_valid_assignment).
void encode_batch(ByteWriter& out, const qubo::SolveBatch& batch);

/// Throws DecodeError on malformed input (callers catch; see header note).
qubo::SolveBatch decode_batch(ByteReader& in);

/// QuboModel codec: num_vars, offset, then the structurally nonzero
/// upper-triangular coefficients as (i, j, IEEE-754 bits) triples.  The
/// encoding is canonical — two models built along different term-insertion
/// paths to the same coefficients encode byte-identically — so it is safe
/// to fingerprint or transport.  Used by the network front end's SubmitJob
/// frame.
void encode_model(ByteWriter& out, const qubo::QuboModel& model);

/// Throws DecodeError on malformed input (truncated triples, out-of-range
/// indices, or an implausible variable count).
qubo::QuboModel decode_model(ByteReader& in);

}  // namespace qross::io
