#include "io/binary.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace qross::io {

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file.good()) return std::nullopt;
  const auto size = static_cast<std::size_t>(file.tellg());
  std::vector<std::uint8_t> bytes(size);
  file.seekg(0);
  if (size > 0 &&
      !file.read(reinterpret_cast<char*>(bytes.data()),
                 static_cast<std::streamsize>(size))) {
    return std::nullopt;
  }
  return bytes;
}

bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file.good()) return false;
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file.good()) {
      file.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace qross::io
