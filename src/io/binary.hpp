#pragma once

// Endian-explicit binary primitives for the persistence layer (src/io/).
//
// Every multi-byte value is encoded little-endian byte by byte, so files
// written on any supported target decode identically everywhere (the
// in-memory representation never leaks into the format).  Doubles travel as
// their IEEE-754 bit pattern via std::bit_cast, making round trips
// bit-identical — including NaN payloads and -0.0.
//
// ByteWriter appends into a growable buffer; ByteReader consumes a borrowed
// span with hard bounds checks.  A reader overrun throws DecodeError, which
// the record scanner (io/snapshot) catches and converts into a skipped
// record — corrupt input is never fatal above this layer.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/hash.hpp"

namespace qross::io {

/// Thrown by ByteReader on truncated or malformed input.  Internal to the
/// io layer: public entry points (scan, CacheStore::load) catch it and
/// degrade gracefully instead of propagating.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  }

  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return bytes_.size(); }
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - offset_; }
  std::size_t offset() const { return offset_; }

  std::uint8_t u8() {
    require(1);
    return bytes_[offset_++];
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(bytes_[offset_++]) << shift;
    }
    return value;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(bytes_[offset_++]) << shift;
    }
    return value;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::span<const std::uint8_t> raw(std::size_t size) {
    require(size);
    const auto view = bytes_.subspan(offset_, size);
    offset_ += size;
    return view;
  }

 private:
  void require(std::size_t size) const {
    if (remaining() < size) {
      throw DecodeError("truncated input: need " + std::to_string(size) +
                        " bytes, have " + std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// Record checksum: the repo's deterministic 64-bit stream hash over the
/// payload bytes, salted so a checksum never collides with a same-bytes
/// fingerprint lane.  Not cryptographic — it detects corruption, not
/// tampering.
inline std::uint64_t checksum64(std::span<const std::uint8_t> bytes) {
  return Hash64(0xC5C5C5C5C5C5C5C5ULL)
      .mix(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                            bytes.size()))
      .digest();
}

/// Reads an entire file into memory; nullopt when the file is missing or
/// unreadable (both are "no data", never an error, at this layer).
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

/// Writes `bytes` to `path` atomically: a sibling temp file is written,
/// flushed, and renamed over the target, so readers see either the old or
/// the new snapshot — never a half-written one.  Returns false on I/O error.
bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

}  // namespace qross::io
