#include "io/cache_store.hpp"

#include <cstdio>
#include <filesystem>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/snapshot.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace qross::io {

namespace {

// Entry payload: key.hi | key.lo | run_ms | batch.  Framing (size, type,
// checksum) is added by write_record.
std::vector<std::uint8_t> encode_entry(const CacheEntry& entry) {
  ByteWriter payload;
  payload.u64(entry.key.hi);
  payload.u64(entry.key.lo);
  payload.f64(entry.run_ms);
  encode_batch(payload, *entry.batch);
  ByteWriter record;
  write_record(record, kRecordCacheEntry, payload.bytes());
  return record.take();
}

struct ScannedEntry {
  CacheEntry entry;
  std::uint64_t record_bytes = 0;  ///< framed size, for the byte budget
};

struct FileScan {
  std::vector<ScannedEntry> entries;  // oldest -> newest
  std::size_t records = 0;
  std::size_t skipped = 0;
  std::uint32_t version = 0;
  bool version_rejected = false;
  bool exists = false;
  std::uint64_t file_bytes = 0;
};

/// Best-effort scan of one snapshot/journal file.  Every failure mode
/// (missing file, foreign magic, future version, torn tail, flipped bytes)
/// lands in the stats, never in an exception.
FileScan scan_file(const std::string& path) {
  FileScan scan;
  const auto bytes = read_file(path);
  if (!bytes.has_value()) return scan;
  scan.exists = true;
  scan.file_bytes = bytes->size();
  ByteReader reader(*bytes);
  switch (read_header(reader, &scan.version)) {
    case HeaderStatus::ok:
      break;
    case HeaderStatus::bad_magic:
      ++scan.skipped;  // the whole file is unusable
      return scan;
    case HeaderStatus::future_version:
      scan.version_rejected = true;
      return scan;
  }
  const ScanStats stats = scan_records(
      reader, [&](std::uint32_t type, std::span<const std::uint8_t> payload) {
        if (type != kRecordCacheEntry) return true;  // tolerated, not ours
        try {
          ByteReader in(payload);
          ScannedEntry scanned;
          scanned.entry.key.hi = in.u64();
          scanned.entry.key.lo = in.u64();
          scanned.entry.run_ms = in.f64();
          scanned.entry.batch = std::make_shared<const qubo::SolveBatch>(
              decode_batch(in));
          scanned.record_bytes = payload.size() + 16;
          scan.entries.push_back(std::move(scanned));
          return true;
        } catch (const DecodeError&) {
          return false;  // checksum matched but the payload is malformed
        }
      });
  scan.records = stats.records;
  scan.skipped = stats.skipped + (stats.truncated ? 1 : 0);
  return scan;
}

/// Newest-wins merge of snapshot + journal entries, preserving the recency
/// order (an entry re-appended later moves to the newer position).
std::vector<ScannedEntry> merge_newest_wins(FileScan&& snapshot,
                                            FileScan&& journal) {
  std::vector<ScannedEntry> merged;
  merged.reserve(snapshot.entries.size() + journal.entries.size());
  std::unordered_map<service::Fingerprint, std::size_t,
                     service::FingerprintHash>
      index;
  auto take = [&](std::vector<ScannedEntry>& entries) {
    for (auto& scanned : entries) {
      const auto it = index.find(scanned.entry.key);
      if (it != index.end()) merged[it->second].entry.batch = nullptr;
      index[scanned.entry.key] = merged.size();
      merged.push_back(std::move(scanned));
    }
  };
  take(snapshot.entries);
  take(journal.entries);
  std::erase_if(merged,
                [](const ScannedEntry& e) { return e.entry.batch == nullptr; });
  return merged;
}

}  // namespace

CacheStore::CacheStore(CacheStoreConfig config) : config_(std::move(config)) {}

std::size_t CacheStore::load(
    const std::function<void(CacheEntry entry)>& sink) {
  MutexLock lock(m_);
  FileScan snapshot = scan_file(config_.path);
  FileScan journal = scan_file(journal_path());
  load_skipped_ = snapshot.skipped + journal.skipped;
  version_rejected_ = snapshot.version_rejected || journal.version_rejected;
  std::size_t delivered = 0;
  for (const auto* scan : {&snapshot, &journal}) {
    for (const auto& scanned : scan->entries) {
      sink(scanned.entry);
      ++delivered;
    }
  }
  return delivered;
}

std::size_t CacheStore::load_skipped() const {
  MutexLock lock(m_);
  return load_skipped_;
}

bool CacheStore::version_rejected() const {
  MutexLock lock(m_);
  return version_rejected_;
}

bool CacheStore::append(const CacheEntry& entry) {
  MutexLock lock(m_);
  if (!journal_.is_open()) {
    if (!repair_journal_tail_locked()) return false;
    journal_.open(journal_path(),
                  std::ios::binary | std::ios::app);
    if (!journal_.good()) return false;
    if (journal_.tellp() == std::ofstream::pos_type(0)) {
      ByteWriter header;
      write_header(header);
      journal_.write(reinterpret_cast<const char*>(header.bytes().data()),
                     static_cast<std::streamsize>(header.size()));
    }
  }
  const auto record = encode_entry(entry);
  journal_.write(reinterpret_cast<const char*>(record.data()),
                 static_cast<std::streamsize>(record.size()));
  journal_.flush();
  if (!journal_.good()) {
    journal_.close();  // reopen (and retry the header) on the next append
    return false;
  }
  return true;
}

std::size_t CacheStore::compact() {
  MutexLock lock(m_);
  return compact_locked();
}

bool CacheStore::repair_journal_tail_locked() {
  const auto bytes = read_file(journal_path());
  if (!bytes.has_value()) return true;  // no journal yet: nothing to repair
  ByteReader reader(*bytes);
  switch (read_header(reader)) {
    case HeaderStatus::future_version:
      // A newer build's journal: mixing our records into it could corrupt
      // data we cannot read.  Refuse to append rather than guess.
      return false;
    case HeaderStatus::bad_magic:
      // Foreign or half-written beyond recognition — unusable by any
      // reader, so start the journal over.
      journal_.close();
      std::remove(journal_path().c_str());
      return true;
    case HeaderStatus::ok:
      break;
  }
  // Walk the framing to the end of the last complete record.  Checksums
  // are irrelevant here: a corrupt-but-fully-framed record still keeps the
  // stream in sync, only a torn tail would swallow everything appended
  // after it (the tear becomes a bogus length field mid-stream).
  std::size_t valid_end = reader.offset();
  while (reader.remaining() >= 16) {
    const std::uint32_t size = reader.u32();
    reader.u32();  // type
    reader.u64();  // checksum
    if (size > reader.remaining()) break;
    reader.raw(size);
    valid_end = reader.offset();
  }
  if (valid_end < bytes->size()) {
    std::error_code ec;
    std::filesystem::resize_file(journal_path(), valid_end, ec);
    if (ec) {  // cannot repair in place: replace the file wholesale
      journal_.close();
      return write_file_atomic(
          journal_path(),
          std::span<const std::uint8_t>(bytes->data(), valid_end));
    }
  }
  return true;
}

std::size_t CacheStore::compact_locked() {
  // Counted/spanned here rather than in compact(): the destructor's final
  // compaction goes through this path too.  The obs singletons are leaked
  // (never destroyed), so static-teardown-time compaction stays safe.
  obs::registry()
      .counter("qross_cache_compactions_total",
               "CacheStore journal-into-snapshot compactions")
      ->inc();
  obs::ScopedSpan span("compact", "io");
  if (journal_.is_open()) journal_.close();
  FileScan snapshot = scan_file(config_.path);
  FileScan journal = scan_file(journal_path());
  if (!snapshot.exists && !journal.exists) return 0;  // nothing to create
  auto merged =
      merge_newest_wins(std::move(snapshot), std::move(journal));
  // Eviction budget: keep the newest suffix that fits both limits.
  std::size_t first = merged.size();
  std::uint64_t bytes = 0;
  while (first > 0 && merged.size() - first < config_.max_entries &&
         bytes + merged[first - 1].record_bytes <= config_.max_bytes) {
    bytes += merged[first - 1].record_bytes;
    --first;
  }
  ByteWriter out;
  write_header(out);
  for (std::size_t k = first; k < merged.size(); ++k) {
    const auto record = encode_entry(merged[k].entry);
    out.raw(record);
  }
  if (!write_file_atomic(config_.path, out.bytes())) return 0;
  std::remove(journal_path().c_str());
  return merged.size() - first;
}

void CacheStore::clear() {
  MutexLock lock(m_);
  if (journal_.is_open()) journal_.close();
  std::remove(config_.path.c_str());
  std::remove((config_.path + ".tmp").c_str());
  std::remove(journal_path().c_str());
}

CacheStoreInfo CacheStore::info() {
  MutexLock lock(m_);
  if (journal_.is_open()) journal_.flush();
  FileScan snapshot = scan_file(config_.path);
  FileScan journal = scan_file(journal_path());
  CacheStoreInfo info;
  info.snapshot_exists = snapshot.exists;
  info.journal_exists = journal.exists;
  info.snapshot_version = snapshot.version;
  info.snapshot_records = snapshot.records;
  info.journal_records = journal.records;
  info.snapshot_bytes = snapshot.file_bytes;
  info.journal_bytes = journal.file_bytes;
  info.skipped_records = snapshot.skipped + journal.skipped;
  info.version_rejected =
      snapshot.version_rejected || journal.version_rejected;
  const auto merged =
      merge_newest_wins(std::move(snapshot), std::move(journal));
  info.live_entries = merged.size();
  for (const auto& scanned : merged) info.saved_run_ms += scanned.entry.run_ms;
  return info;
}

}  // namespace qross::io
