#pragma once

// Persistent result-cache store: an append-only journal plus a compacted
// snapshot, both in the io/snapshot record format, keyed by the service's
// canonical 128-bit job fingerprint.
//
// Why two files: completed results are journaled one record at a time
// (process-crash-safe — a torn tail loses at most the last record; writes
// are flushed to the OS but deliberately NOT fsynced, so power-loss/kernel
// -crash durability is out of scope: every entry is reproducible by
// re-solving, the cache is an optimisation), while the
// snapshot is only ever rewritten atomically by compact(), which merges
// snapshot + journal newest-wins, applies the eviction budget, and removes
// the journal.  load() reads snapshot then journal oldest-to-newest, so a
// warm-filled LRU cache ends up with the newest entries most recent.
//
// Robustness contract (the cross-run warm-start guarantee depends on it):
// corrupt, truncated, foreign, or future-version files degrade to an empty
// load — NEVER an exception.  skipped()/version_rejected() report what was
// dropped so callers can surface it in metrics.
//
// All public methods are internally synchronised; one CacheStore may be
// shared by a serving SolveService and a concurrent explicit flush.
// Concurrent access to one path from multiple *processes* is not
// coordinated — the last compaction wins.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "common/thread_annotations.hpp"
#include "qubo/batch.hpp"
#include "service/fingerprint.hpp"

namespace qross::io {

struct CacheStoreConfig {
  /// Snapshot path; the journal lives beside it at `path + ".journal"`.
  std::string path;
  /// Compaction eviction budget: at most this many entries are kept
  /// (newest first).  0 keeps none — compact() then empties the store.
  std::size_t max_entries = 4096;
  /// Compaction eviction budget on total encoded record bytes.
  std::uint64_t max_bytes = 64ull * 1024 * 1024;
};

/// One persisted cache entry: the job key, the batch, and the solve
/// metadata worth keeping across runs (what the entry cost to produce).
struct CacheEntry {
  service::Fingerprint key;
  double run_ms = 0.0;  ///< kernel milliseconds the original execution took
  std::shared_ptr<const qubo::SolveBatch> batch;
};

struct CacheStoreInfo {
  bool snapshot_exists = false;
  bool journal_exists = false;
  std::uint32_t snapshot_version = 0;  ///< 0 when absent/foreign
  std::size_t snapshot_records = 0;
  std::size_t journal_records = 0;
  std::size_t live_entries = 0;  ///< distinct keys after newest-wins merge
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t journal_bytes = 0;
  std::size_t skipped_records = 0;
  bool version_rejected = false;
  /// Total kernel milliseconds the live entries represent — the solver
  /// time a fully warm start avoids re-paying.
  double saved_run_ms = 0.0;
};

class CacheStore {
 public:
  explicit CacheStore(CacheStoreConfig config);

  const CacheStoreConfig& config() const { return config_; }
  std::string journal_path() const { return config_.path + ".journal"; }

  /// Reads snapshot then journal, delivering every decodable entry
  /// oldest-to-newest (duplicate keys are delivered in order; an LRU
  /// `put` naturally keeps the newest).  Returns the number delivered.
  /// Corrupt input is skipped, never thrown.
  std::size_t load(const std::function<void(CacheEntry entry)>& sink)
      EXCLUDES(m_);

  /// Records skipped by the most recent load() — corrupt, truncated, or
  /// undecodable.
  std::size_t load_skipped() const EXCLUDES(m_);
  /// True when the most recent load() refused a future-version snapshot.
  bool version_rejected() const EXCLUDES(m_);

  /// Appends one entry to the journal and flushes it to the OS.  The first
  /// append repairs a torn journal tail (crash recovery) so the new record
  /// stays framed.  Returns false on I/O failure or a future-version
  /// journal (the entry is then simply not persisted).
  bool append(const CacheEntry& entry) EXCLUDES(m_);

  /// Merges snapshot + journal (newest record per key wins), applies the
  /// eviction budget (newest entries kept), atomically rewrites the
  /// snapshot, and removes the journal.  Returns the entry count kept.
  std::size_t compact() EXCLUDES(m_);

  /// Removes snapshot, journal, and any leftover temp file.
  void clear() EXCLUDES(m_);

  /// Scans both files and reports their state; read-only.
  CacheStoreInfo info() EXCLUDES(m_);

 private:
  std::size_t compact_locked() REQUIRES(m_);
  /// Truncates a torn tail off the journal before the first append of this
  /// store's lifetime, so post-crash appends stay framed (a record written
  /// after a torn tail would otherwise be unreadable and silently dropped
  /// by the next compaction).  False = the journal must not be appended to
  /// (written by a newer format version).
  bool repair_journal_tail_locked() REQUIRES(m_);

  mutable Mutex m_;
  CacheStoreConfig config_;  ///< immutable after construction
  /// Opened lazily by append(), closed by compact().
  std::ofstream journal_ GUARDED_BY(m_);
  std::size_t load_skipped_ GUARDED_BY(m_) = 0;
  bool version_rejected_ GUARDED_BY(m_) = false;
};

}  // namespace qross::io
