#pragma once

// Classic single-flip simulated annealing on QUBO with a geometric
// temperature schedule.  This is the paper's "Simulated Annealing on CPU"
// baseline solver (Fig. 1 bottom row, QAPLIB experiments, appendix B).
//
// The start temperature is derived from the model automatically: T_start is
// set so that an average uphill move (probed on random states) is accepted
// with probability `initial_acceptance`.  T_end is a fixed fraction of
// T_start rather than a probed quantity — on penalty-relaxed QUBOs the
// smallest delta at a *random* state is penalty-scale, wildly larger than
// the objective-scale deltas near feasibility, and deriving T_end from it
// leaves the walk hot forever.  A fixed ratio keeps one parameter set usable
// across the whole range of penalty weights A the tuning experiments sweep.
//
// Replicas run in SIMD blocks (ReplicaBlockEvaluator): all lanes of a block
// attempt the same variable each step, with the proposal indices drawn from
// one shared stream and the Metropolis draws from each replica's own
// derive_seed(seed, replica) stream.  Batches are bit-identical across
// thread counts and across the scalar/AVX2 dispatch arms, but the schedule
// differs from the pre-SIMD per-replica proposal walk — config_digest is
// versioned so cached pre-SIMD batches are not replayed as this kernel's.

#include "solvers/solver.hpp"

namespace qross::solvers {

struct SaParams {
  double initial_acceptance = 0.8;
  /// T_end = temperature_ratio * T_start (geometric cooling in between).
  double temperature_ratio = 2e-4;
  /// Restarts per replica from a fresh random state keep replicas cheap but
  /// diverse; the best state over restarts is returned per replica.
  std::size_t restarts = 1;
};

class SimulatedAnnealer final : public QuboSolver {
 public:
  explicit SimulatedAnnealer(SaParams params = {});

  std::string name() const override { return "sa"; }
  std::uint64_t config_digest() const override {
    return Hash64()
        .mix(std::string_view("sa-v2"))  // v2: lockstep SIMD proposal stream
        .mix(params_.initial_acceptance)
        .mix(params_.temperature_ratio)
        .mix(static_cast<std::uint64_t>(params_.restarts))
        .digest();
  }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const SolveOptions& options) const override;

 private:
  SaParams params_;
};

}  // namespace qross::solvers
