#include "solvers/qbsolv.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/incremental.hpp"
#include "qubo/sparse.hpp"
#include "solvers/replica_for.hpp"
#include "solvers/simulated_annealer.hpp"
#include "solvers/tabu_search.hpp"

namespace qross::solvers {

qubo::QuboModel clamp_subproblem(const qubo::QuboModel& model,
                                 const std::vector<std::size_t>& subset,
                                 const qubo::Bits& x) {
  const std::size_t n = model.num_vars();
  QROSS_REQUIRE(x.size() == n, "clamp state size mismatch");
  std::vector<bool> in_subset(n, false);
  for (std::size_t v : subset) {
    QROSS_REQUIRE(v < n, "subset variable out of range");
    QROSS_REQUIRE(!in_subset[v], "duplicate variable in subset");
    in_subset[v] = true;
  }

  qubo::QuboModel sub(subset.size());

  // Constant part: fixed-variable energy (subset bits treated as 0).
  double constant = model.offset();
  for (std::size_t i = 0; i < n; ++i) {
    if (in_subset[i] || x[i] == 0) continue;
    constant += model.linear(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!in_subset[j] && x[j] != 0) constant += model.coefficient(i, j);
    }
  }
  sub.set_offset(constant);

  // Linear terms pick up interactions with the clamped-on variables.
  for (std::size_t a = 0; a < subset.size(); ++a) {
    const std::size_t i = subset[a];
    double lin = model.linear(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && !in_subset[j] && x[j] != 0) lin += model.interaction(i, j);
    }
    sub.add_term(a, a, lin);
    for (std::size_t b = a + 1; b < subset.size(); ++b) {
      const double w = model.interaction(i, subset[b]);
      if (w != 0.0) sub.add_term(a, b, w);
    }
  }
  return sub;
}

Qbsolv::Qbsolv(QbsolvParams params) : params_(params) {
  QROSS_REQUIRE(params_.num_rounds >= 1, "at least one round");
  QROSS_REQUIRE(params_.subsolver_sweeps >= 1, "at least one sub-solver sweep");
}

qubo::SolveBatch Qbsolv::solve(const qubo::QuboModel& model,
                               const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  qubo::SolveBatch batch;
  batch.results.resize(options.num_replicas);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }

  const std::size_t sub_size =
      params_.subproblem_size != 0
          ? std::min(params_.subproblem_size, n)
          : std::min(n, std::max<std::size_t>(16, n / 3));
  const SimulatedAnnealer subsolver;
  const TabuParams tabu_params;

  // One adjacency shared by every replica's initial evaluation and every
  // global tabu round; only the clamped sub-QUBOs are built per round.
  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);

  for_each_replica(
      options.num_replicas, options.num_threads, [&](std::size_t replica) {
        Rng rng(derive_seed(options.seed, replica));
        qubo::Bits x(n);
        for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
        double energy = adjacency->energy(x);  // O(nnz), not dense O(n^2)

        for (std::size_t round = 0;
             round < params_.num_rounds && !options.stop.stop_requested();
             ++round) {
          // Phase 1: global tabu improvement, budget ~ one pass worth of
          // flips.  The stop token and progress tick flow into the tabu
          // loop (polled per iteration) and the SA sub-solve below (per
          // sweep), so a signalled replica exits mid-round.
          auto [improved, improved_energy] = TabuSearch::improve(
              adjacency, x, tabu_params,
              options.num_sweeps * n / params_.num_rounds + n,
              derive_seed(options.seed, (replica << 8) | (round << 1)),
              options.stop, options.on_sweep);
          if (improved_energy <= energy) {
            x = std::move(improved);
            energy = improved_energy;
          }

          // Phase 2: random-subspace sub-QUBO refinement.
          if (options.stop.stop_requested()) break;
          auto perm = rng.permutation(n);
          perm.resize(sub_size);
          std::sort(perm.begin(), perm.end());
          const qubo::QuboModel sub = clamp_subproblem(model, perm, x);
          SolveOptions sub_options;
          sub_options.num_replicas = 1;
          sub_options.num_sweeps = params_.subsolver_sweeps;
          sub_options.seed =
              derive_seed(options.seed, (replica << 8) | (round << 1) | 1);
          sub_options.stop = options.stop;
          sub_options.on_sweep = options.on_sweep;
          const qubo::SolveBatch sub_batch = subsolver.solve(sub, sub_options);
          const auto& sub_best = sub_batch.results[sub_batch.best_index()];
          if (sub_best.qubo_energy <= energy) {
            for (std::size_t a = 0; a < perm.size(); ++a) {
              x[perm[a]] = sub_best.assignment[a];
            }
            energy = sub_best.qubo_energy;
          }
        }
        batch.results[replica].assignment = std::move(x);
        batch.results[replica].qubo_energy = energy;
      });
  return batch;
}

}  // namespace qross::solvers
