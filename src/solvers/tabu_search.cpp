#include "solvers/tabu_search.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/incremental.hpp"
#include "solvers/replica_for.hpp"

namespace qross::solvers {

TabuSearch::TabuSearch(TabuParams params) : params_(params) {}

std::pair<qubo::Bits, double> TabuSearch::improve(
    const qubo::SparseAdjacencyPtr& adjacency, const qubo::Bits& start,
    const TabuParams& params, std::size_t max_iterations, std::uint64_t seed,
    const StopToken& stop, const SweepProgressFn& on_sweep) {
  const std::size_t n = adjacency->num_vars();
  QROSS_REQUIRE(start.size() == n, "start state size mismatch");
  if (n == 0) return {qubo::Bits{}, adjacency->offset()};

  const std::size_t tenure =
      params.tenure != 0 ? params.tenure : std::max<std::size_t>(7, n / 10);
  const std::size_t patience =
      params.patience != 0 ? params.patience : 4 * n;

  Rng rng(seed);
  qubo::IncrementalEvaluator eval(adjacency);
  eval.set_state(start);

  qubo::Bits best_state = eval.state();
  double best_energy = eval.energy();
  std::vector<std::size_t> tabu_until(n, 0);
  std::size_t stall = 0;

  for (std::size_t iter = 1; iter <= max_iterations && stall < patience;
       ++iter) {
    if (on_sweep) on_sweep();
    if (stop.stop_requested()) break;
    // Best-improvement scan; ties broken randomly so replicas diverge.
    double best_delta = std::numeric_limits<double>::infinity();
    std::size_t best_var = n;
    std::size_t num_ties = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = eval.flip_delta(i);
      const bool is_tabu = tabu_until[i] > iter;
      const bool aspiration = eval.energy() + delta < best_energy;
      if (is_tabu && !aspiration) continue;
      if (delta < best_delta - 1e-15) {
        best_delta = delta;
        best_var = i;
        num_ties = 1;
      } else if (delta <= best_delta + 1e-15) {
        // Reservoir-sample among ties.
        ++num_ties;
        if (rng.uniform_int(num_ties) == 0) best_var = i;
      }
    }
    if (best_var == n) {
      // Everything tabu and nothing aspires: clear the oldest restriction.
      std::fill(tabu_until.begin(), tabu_until.end(), 0);
      continue;
    }
    eval.apply_flip(best_var);
    tabu_until[best_var] = iter + tenure;
    if (eval.energy() < best_energy - 1e-15) {
      best_energy = eval.energy();
      best_state = eval.state();
      stall = 0;
    } else {
      ++stall;
    }
  }
  return {std::move(best_state), best_energy};
}

std::pair<qubo::Bits, double> TabuSearch::improve(const qubo::QuboModel& model,
                                                  const qubo::Bits& start,
                                                  const TabuParams& params,
                                                  std::size_t max_iterations,
                                                  std::uint64_t seed) {
  return improve(qubo::SparseAdjacency::build(model), start, params,
                 max_iterations, seed);
}

qubo::SolveBatch TabuSearch::solve(const qubo::QuboModel& model,
                                   const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  qubo::SolveBatch batch;
  batch.results.resize(options.num_replicas);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }
  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);
  const std::size_t max_iters = options.num_sweeps * n;
  for_each_replica(
      options.num_replicas, options.num_threads, [&](std::size_t replica) {
        Rng rng(derive_seed(options.seed, replica));
        qubo::Bits x(n);
        for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
        auto [state, energy] =
            improve(adjacency, x, params_, max_iters,
                    derive_seed(options.seed, replica ^ 0x7ab0ULL),
                    options.stop, options.on_sweep);
        batch.results[replica].assignment = std::move(state);
        batch.results[replica].qubo_energy = energy;
      });
  return batch;
}

}  // namespace qross::solvers
