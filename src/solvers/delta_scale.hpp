#pragma once

// Shared delta-scale probe for annealing-style solvers.
//
// Temperature schedules are derived from the model itself: T_start is set
// so that a typical uphill move (probed on random states) is accepted with
// the solver's configured probability.  Every annealing kernel (SA, DA,
// parallel tempering) needs the same probe, so it lives here once, running
// on the shared sparse adjacency the solve call already built.

#include <cstdint>

#include "common/rng.hpp"
#include "qubo/sparse.hpp"

namespace qross::solvers {

/// Typical uphill move magnitude over random states.
struct DeltaScale {
  double typical = 1.0;  // mean |delta| over probes
  double minimal = 1.0;  // smallest nonzero |delta| seen
};

/// Probes |flip_delta| over a handful of random states.  Deterministic for
/// a given (adjacency, rng-state) pair.
DeltaScale probe_delta_scale(const qubo::SparseAdjacencyPtr& adjacency,
                             Rng& rng);

}  // namespace qross::solvers
