#pragma once

// Parallel tempering (replica exchange) QUBO solver.
//
// The Digital Annealer reference this library's DA kernel follows (Aramon
// et al. 2019) evaluates a parallel-tempering mode alongside plain
// annealing; we provide it as a fifth solver kernel.  A ladder of replicas
// runs Metropolis sweeps at geometrically-spaced fixed temperatures, and
// after every sweep adjacent temperatures attempt a state exchange with
// probability min(1, exp((1/T_i - 1/T_j)(E_i - E_j))).  Cold replicas
// exploit while hot replicas ferry the walk across barriers.
//
// Batch semantics: options.num_replicas chains make up the ladder, and each
// chain reports the best state it ever visited, so one call returns the
// usual B solutions with naturally varied quality.

#include "solvers/solver.hpp"

namespace qross::solvers {

struct PtParams {
  /// Acceptance targeted by the hottest temperature (sets the ladder top).
  double hot_acceptance = 0.8;
  /// Ratio T_cold / T_hot for the ladder bottom.
  double temperature_ratio = 1e-3;
  /// Exchange attempts per sweep as a fraction of ladder size (1.0 = every
  /// adjacent pair once per sweep, alternating even/odd pairs).
  double exchange_rate = 1.0;
};

class ParallelTempering final : public QuboSolver {
 public:
  explicit ParallelTempering(PtParams params = {});

  std::string name() const override { return "pt"; }
  std::uint64_t config_digest() const override {
    return Hash64()
        .mix(std::string_view("pt-v2"))  // v2: lockstep SIMD ladder
        .mix(params_.hot_acceptance)
        .mix(params_.temperature_ratio)
        .mix(params_.exchange_rate)
        .digest();
  }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const SolveOptions& options) const override;

 private:
  PtParams params_;
};

}  // namespace qross::solvers
