#include "solvers/parallel_tempering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/aligned.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/replica_block.hpp"
#include "qubo/sparse.hpp"
#include "solvers/delta_scale.hpp"

namespace qross::solvers {

namespace {

// Stream tag for the shared proposal sequence (distinct from the ladder
// stream 0x977 and the per-chain acceptance streams).
constexpr std::uint64_t kProposalStream = 0x977a110c0ffee02ULL;

}  // namespace

ParallelTempering::ParallelTempering(PtParams params) : params_(params) {
  QROSS_REQUIRE(params_.hot_acceptance > 0.0 && params_.hot_acceptance < 1.0,
                "hot acceptance in (0,1)");
  QROSS_REQUIRE(params_.temperature_ratio > 0.0 &&
                    params_.temperature_ratio < 1.0,
                "temperature ratio in (0,1)");
  QROSS_REQUIRE(params_.exchange_rate > 0.0 && params_.exchange_rate <= 1.0,
                "exchange rate in (0,1]");
}

qubo::SolveBatch ParallelTempering::solve(const qubo::QuboModel& model,
                                          const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  const std::size_t chains = std::max<std::size_t>(options.num_replicas, 1);
  qubo::SolveBatch batch;
  batch.results.resize(chains);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }

  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);

  // Ladder stream: probe, chain initialisation, and exchange decisions.
  Rng ladder_rng(derive_seed(options.seed, 0x977ULL));
  const double typical_delta = probe_delta_scale(adjacency, ladder_rng).typical;
  const double t_hot = typical_delta / -std::log(params_.hot_acceptance);
  const double t_cold = t_hot * params_.temperature_ratio;

  // Geometric ladder from cold (rank 0) to hot (rank chains-1).
  std::vector<double> temperatures(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    const double t = chains > 1
                         ? static_cast<double>(c) /
                               static_cast<double>(chains - 1)
                         : 0.0;
    temperatures[c] = t_cold * std::pow(t_hot / t_cold, t);
  }

  // The whole ladder is ONE replica block: chain c lives in lane c forever,
  // and replica exchange swaps the lanes' ladder *ranks* (an O(1) index
  // swap) instead of their states — the blocked dual of the old
  // swap-the-evaluators trick, with the per-chain best simply following the
  // lane.  All lanes propose the same variable per step (shared proposal
  // stream) but accept at their own current temperature with their own
  // derive_seed(seed, chain) stream, so results are independent of the
  // dispatch arm.  The ladder was always sequential (chains couple at
  // exchanges), so num_threads stays ignored.
  qubo::ReplicaBlockEvaluator eval(adjacency, chains);
  std::vector<qubo::Bits> best_state(chains);
  std::vector<double> best_energy(chains,
                                  std::numeric_limits<double>::infinity());
  std::vector<std::size_t> lane_of_rank(chains);  // rank -> lane
  std::vector<double> temp_of_lane(chains);
  std::vector<Rng> rngs;
  rngs.reserve(chains);
  {
    qubo::Bits x(n);
    for (std::size_t c = 0; c < chains; ++c) {
      for (auto& bit : x) bit = ladder_rng.bernoulli(0.5) ? 1 : 0;
      eval.set_state(c, x);
      lane_of_rank[c] = c;
      temp_of_lane[c] = temperatures[c];
      eval.extract_state(c, best_state[c]);
      best_energy[c] = eval.energy(c);
      rngs.emplace_back(derive_seed(options.seed, c));
    }
  }
  Rng proposal_rng(derive_seed(options.seed, kProposalStream));
  AlignedVector<double> deltas(eval.lane_stride(), 0.0);
  std::vector<std::uint64_t> accept(eval.mask_words(), 0);

  const std::size_t sweeps = std::max<std::size_t>(1, options.num_sweeps);
  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    // One lockstep Metropolis sweep over all chains at once.
    for (std::size_t step = 0; step < n; ++step) {
      const auto i = static_cast<std::size_t>(proposal_rng.uniform_int(n));
      eval.compute_flip_deltas(i, deltas.data());
      std::fill(accept.begin(), accept.end(), 0);
      bool any = false;
      for (std::size_t l = 0; l < chains; ++l) {
        const double delta = deltas[l];
        if (delta <= 0.0 ||
            rngs[l].uniform() < std::exp(-delta / temp_of_lane[l])) {
          accept[l / 64] |= std::uint64_t{1} << (l % 64);
          any = true;
        }
      }
      if (!any) continue;
      eval.apply_flips(i, accept.data(), deltas.data());
      for (std::size_t l = 0; l < chains; ++l) {
        if ((accept[l / 64] >> (l % 64)) & 1u &&
            eval.energy(l) < best_energy[l]) {
          best_energy[l] = eval.energy(l);
          eval.extract_state(l, best_state[l]);
        }
      }
    }
    // One block sweep advances every chain by one sweep; the checkpoint
    // ticks the progress callback per chain like the old per-slot loop.
    if (block_sweep_checkpoint(options, chains)) break;
    // Replica exchange between adjacent temperatures (alternating parity).
    if (chains >= 2 && ladder_rng.uniform() < params_.exchange_rate) {
      const std::size_t parity = sweep % 2;
      for (std::size_t s = parity; s + 1 < chains; s += 2) {
        const std::size_t lo = lane_of_rank[s];
        const std::size_t hi = lane_of_rank[s + 1];
        const double e_lo = eval.energy(lo);
        const double e_hi = eval.energy(hi);
        const double beta_lo = 1.0 / temperatures[s];
        const double beta_hi = 1.0 / temperatures[s + 1];
        const double log_accept = (beta_lo - beta_hi) * (e_lo - e_hi);
        if (log_accept >= 0.0 ||
            ladder_rng.uniform() < std::exp(log_accept)) {
          // The chains trade ladder ranks; their states stay in place.
          std::swap(lane_of_rank[s], lane_of_rank[s + 1]);
          temp_of_lane[lo] = temperatures[s + 1];
          temp_of_lane[hi] = temperatures[s];
        }
      }
    }
  }

  for (std::size_t c = 0; c < chains; ++c) {
    batch.results[c].assignment = std::move(best_state[c]);
    batch.results[c].qubo_energy = best_energy[c];
  }
  return batch;
}

}  // namespace qross::solvers
