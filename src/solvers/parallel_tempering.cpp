#include "solvers/parallel_tempering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/incremental.hpp"
#include "qubo/sparse.hpp"
#include "solvers/delta_scale.hpp"

namespace qross::solvers {

ParallelTempering::ParallelTempering(PtParams params) : params_(params) {
  QROSS_REQUIRE(params_.hot_acceptance > 0.0 && params_.hot_acceptance < 1.0,
                "hot acceptance in (0,1)");
  QROSS_REQUIRE(params_.temperature_ratio > 0.0 &&
                    params_.temperature_ratio < 1.0,
                "temperature ratio in (0,1)");
  QROSS_REQUIRE(params_.exchange_rate > 0.0 && params_.exchange_rate <= 1.0,
                "exchange rate in (0,1]");
}

qubo::SolveBatch ParallelTempering::solve(const qubo::QuboModel& model,
                                          const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  const std::size_t chains = std::max<std::size_t>(options.num_replicas, 1);
  qubo::SolveBatch batch;
  batch.results.resize(chains);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }

  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);

  Rng rng(derive_seed(options.seed, 0x977ULL));
  const double typical_delta = probe_delta_scale(adjacency, rng).typical;
  const double t_hot = typical_delta / -std::log(params_.hot_acceptance);
  const double t_cold = t_hot * params_.temperature_ratio;

  // Geometric ladder from cold (index 0) to hot (index chains-1).
  std::vector<double> temperatures(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    const double t = chains > 1
                         ? static_cast<double>(c) /
                               static_cast<double>(chains - 1)
                         : 0.0;
    temperatures[c] = t_cold * std::pow(t_hot / t_cold, t);
  }

  // One evaluator per ladder slot, all over the single shared adjacency —
  // a ladder of B chains costs O(nnz + B*n) memory, not O(B*n^2).
  // slot_of_chain tracks which chain's trajectory currently occupies which
  // slot (swaps move *states*, so the per-chain best follows the state, not
  // the temperature).
  std::vector<qubo::IncrementalEvaluator> slots;
  slots.reserve(chains);
  std::vector<qubo::Bits> best_state(chains);
  std::vector<double> best_energy(chains,
                                  std::numeric_limits<double>::infinity());
  std::vector<std::size_t> chain_of_slot(chains);
  for (std::size_t c = 0; c < chains; ++c) {
    slots.emplace_back(adjacency);
    qubo::Bits x(n);
    for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
    slots[c].set_state(x);
    chain_of_slot[c] = c;
    best_state[c] = slots[c].state();
    best_energy[c] = slots[c].energy();
  }

  const std::size_t sweeps = std::max<std::size_t>(1, options.num_sweeps);
  bool stopped = false;
  for (std::size_t sweep = 0; sweep < sweeps && !stopped; ++sweep) {
    // Metropolis sweep per ladder slot at its fixed temperature.  The
    // ladder is sequential, so the cooperative stop is polled after every
    // *slot* sweep — a signalled call exits within one chain's pass, not a
    // whole ladder round.
    for (std::size_t s = 0; s < chains; ++s) {
      auto& eval = slots[s];
      const double temperature = temperatures[s];
      for (std::size_t step = 0; step < n; ++step) {
        const auto i = static_cast<std::size_t>(rng.uniform_int(n));
        const double delta = eval.flip_delta(i);
        if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
          eval.apply_flip(i);
          const std::size_t chain = chain_of_slot[s];
          if (eval.energy() < best_energy[chain]) {
            best_energy[chain] = eval.energy();
            best_state[chain] = eval.state();
          }
        }
      }
      if (sweep_checkpoint(options)) {
        stopped = true;
        break;
      }
    }
    if (stopped) break;
    // Replica exchange between adjacent temperatures (alternating parity).
    if (chains >= 2 && rng.uniform() < params_.exchange_rate) {
      const std::size_t parity = sweep % 2;
      for (std::size_t s = parity; s + 1 < chains; s += 2) {
        const double e_lo = slots[s].energy();
        const double e_hi = slots[s + 1].energy();
        const double beta_lo = 1.0 / temperatures[s];
        const double beta_hi = 1.0 / temperatures[s + 1];
        const double log_accept = (beta_lo - beta_hi) * (e_lo - e_hi);
        if (log_accept >= 0.0 || rng.uniform() < std::exp(log_accept)) {
          // Swap the *states* (and chain identities) between the slots.
          // Swapping whole evaluators moves state, fields and energy in
          // O(1) — the incrementally-maintained values carry over instead
          // of the O(n + nnz) rescan a set_state round-trip would pay.
          std::swap(slots[s], slots[s + 1]);
          std::swap(chain_of_slot[s], chain_of_slot[s + 1]);
        }
      }
    }
  }

  for (std::size_t c = 0; c < chains; ++c) {
    batch.results[c].assignment = std::move(best_state[c]);
    batch.results[c].qubo_energy = best_energy[c];
  }
  return batch;
}

}  // namespace qross::solvers
