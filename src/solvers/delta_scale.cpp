#include "solvers/delta_scale.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.hpp"
#include "qubo/incremental.hpp"

namespace qross::solvers {

DeltaScale probe_delta_scale(const qubo::SparseAdjacencyPtr& adjacency,
                             Rng& rng) {
  const std::size_t n = adjacency->num_vars();
  qubo::IncrementalEvaluator eval(adjacency);
  qubo::Bits x(n, 0);
  DeltaScale scale;
  RunningStats magnitudes;
  double minimal = std::numeric_limits<double>::infinity();
  const std::size_t probes =
      std::max<std::size_t>(4, 128 / std::max<std::size_t>(n, 1));
  for (std::size_t p = 0; p < probes; ++p) {
    for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
    eval.set_state(x);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = std::abs(eval.flip_delta(i));
      if (d > 0.0) {
        magnitudes.add(d);
        minimal = std::min(minimal, d);
      }
    }
  }
  if (!magnitudes.empty()) {
    scale.typical = magnitudes.mean();
    scale.minimal = std::isfinite(minimal) ? minimal : scale.typical;
  }
  return scale;
}

}  // namespace qross::solvers
