#include "solvers/batch_runner.hpp"

#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::solvers {

BatchRunner::BatchRunner(const qubo::ConstrainedProblem& problem,
                         SolverPtr solver, SolveOptions options)
    : problem_(problem), solver_(std::move(solver)), options_(options) {
  QROSS_REQUIRE(solver_ != nullptr, "solver required");
  QROSS_REQUIRE(options_.num_replicas >= 1, "batch size must be positive");
}

SolverSample BatchRunner::run(double relaxation_parameter) {
  const qubo::QuboModel model = problem_.to_qubo(relaxation_parameter);
  SolveOptions call_options = options_;
  call_options.seed = derive_seed(options_.seed, num_calls_);
  const qubo::SolveBatch batch = solver_->solve(model, call_options);
  ++num_calls_;

  SolverSample sample;
  sample.relaxation_parameter = relaxation_parameter;
  sample.stats = qubo::evaluate_batch(problem_, batch);
  history_.push_back(sample);
  return sample;
}

double BatchRunner::best_fitness() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& sample : history_) {
    if (sample.stats.min_fitness < best) best = sample.stats.min_fitness;
  }
  return best;
}

}  // namespace qross::solvers
