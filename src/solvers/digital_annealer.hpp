#pragma once

// CPU simulator of the Fujitsu Digital Annealer algorithm.
//
// Implements the published DA Monte-Carlo kernel (Aramon, Rosenberg,
// Valiante, Miyazawa, Tamura, Katzgraber, "Physics-inspired optimization for
// quadratic unconstrained problems using a digital annealer", Frontiers in
// Physics 2019):
//
//  * parallel trial — at each step the acceptance test is applied to *every*
//    variable in parallel, and one of the accepted flips is chosen uniformly
//    at random (instead of testing a single random variable as in SA);
//  * dynamic offset — if no flip is accepted, an energy offset that relaxes
//    the Metropolis criterion is increased, helping escape local minima; the
//    offset resets to zero after any accepted move.
//
// This substitutes for the DA hardware used in the paper: QROSS only
// consumes batch statistics, and this kernel reproduces the sigmoid-Pf /
// dipper-energy behaviour of Fig. 1 (see bench_fig1_landscape).

#include "solvers/solver.hpp"

namespace qross::solvers {

struct DaParams {
  double initial_acceptance = 0.7;
  double final_acceptance = 0.005;
  /// Dynamic-offset increment, as a fraction of the typical |delta| probed
  /// from the model.
  double offset_increase_rate = 0.3;
};

class DigitalAnnealer final : public QuboSolver {
 public:
  explicit DigitalAnnealer(DaParams params = {});

  std::string name() const override { return "da"; }
  std::uint64_t config_digest() const override {
    return Hash64()
        .mix(std::string_view("da"))
        .mix(params_.initial_acceptance)
        .mix(params_.final_acceptance)
        .mix(params_.offset_increase_rate)
        .digest();
  }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const SolveOptions& options) const override;

 private:
  DaParams params_;
};

}  // namespace qross::solvers
