#pragma once

// Deterministic-greedy tabu search over single-bit flips.
//
// Used both standalone and as the sub-problem / global improver inside the
// Qbsolv hybrid (Booth, Reinhardt & Roy 2017).  Classic scheme: pick the
// best non-tabu flip (best-improvement), make it even if uphill, mark the
// variable tabu for `tenure` iterations, with the aspiration criterion that
// a move beating the incumbent best is always allowed.

#include "qubo/sparse.hpp"
#include "solvers/solver.hpp"

namespace qross::solvers {

struct TabuParams {
  /// Tabu tenure; 0 means auto (max(7, n/10)).
  std::size_t tenure = 0;
  /// Iterations without improvement before the search stops.
  std::size_t patience = 0;  // 0 means auto (4 * n)
};

class TabuSearch final : public QuboSolver {
 public:
  explicit TabuSearch(TabuParams params = {});

  std::string name() const override { return "tabu"; }
  std::uint64_t config_digest() const override {
    return Hash64()
        .mix(std::string_view("tabu"))
        .mix(static_cast<std::uint64_t>(params_.tenure))
        .mix(static_cast<std::uint64_t>(params_.patience))
        .digest();
  }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const SolveOptions& options) const override;

  /// Single tabu run from a given start state; returns the best state found.
  /// `max_iterations` bounds total flips.  Exposed for the Qbsolv hybrid,
  /// which passes its one shared adjacency so repeated improvement rounds
  /// never rebuild it.  Each iteration scans all n flip deltas (≈ one sweep
  /// of work), so `stop` is polled and `on_sweep` ticked once per iteration;
  /// both default to inert.
  static std::pair<qubo::Bits, double> improve(
      const qubo::SparseAdjacencyPtr& adjacency, const qubo::Bits& start,
      const TabuParams& params, std::size_t max_iterations, std::uint64_t seed,
      const StopToken& stop = {}, const SweepProgressFn& on_sweep = {});

  /// Convenience overload building a private adjacency from `model`.
  static std::pair<qubo::Bits, double> improve(const qubo::QuboModel& model,
                                               const qubo::Bits& start,
                                               const TabuParams& params,
                                               std::size_t max_iterations,
                                               std::uint64_t seed);

 private:
  TabuParams params_;
};

}  // namespace qross::solvers
