#pragma once

// Qbsolv-style hybrid decomposing solver (Booth, Reinhardt & Roy, D-Wave
// technical report 2017).
//
// The real Qbsolv splits a large QUBO into sub-QUBOs sized for the quantum
// annealer, solves each sub-problem with the backend while clamping the
// remaining variables, and interleaves global tabu-search improvement.  The
// paper used Qbsolv with a *simulator* backend; we reproduce that structure
// with a simulated-annealing sub-solver:
//
//   repeat num_rounds times:
//     1. global tabu improvement of the incumbent;
//     2. pick a random subset of `subproblem_size` variables, clamp the
//        rest, build the induced sub-QUBO, solve it by SA, and accept the
//        sub-solution if it does not worsen the incumbent.
//
// This is deliberately a different heuristic family from the Digital
// Annealer kernel — the cross-solver generalisation and ablation
// experiments (Table 1 rows 5-8, Fig. 5) rely on the two solvers having
// genuinely different response surfaces.

#include "solvers/solver.hpp"

namespace qross::solvers {

struct QbsolvParams {
  /// Variables per sub-QUBO; 0 means auto (min(n, max(16, n/3))).
  std::size_t subproblem_size = 0;
  /// Decomposition rounds per replica.
  std::size_t num_rounds = 2;
  /// Sweeps for the SA sub-solver on each sub-QUBO.
  std::size_t subsolver_sweeps = 30;
};

class Qbsolv final : public QuboSolver {
 public:
  explicit Qbsolv(QbsolvParams params = {});

  std::string name() const override { return "qbsolv"; }
  std::uint64_t config_digest() const override {
    return Hash64()
        .mix(std::string_view("qbsolv"))
        .mix(static_cast<std::uint64_t>(params_.subproblem_size))
        .mix(static_cast<std::uint64_t>(params_.num_rounds))
        .mix(static_cast<std::uint64_t>(params_.subsolver_sweeps))
        .digest();
  }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const SolveOptions& options) const override;

 private:
  QbsolvParams params_;
};

/// Builds the sub-QUBO induced by clamping all variables outside `subset`
/// to their values in `x`.  Returns a model over subset.size() variables in
/// subset order; its energy equals the full model's energy restricted to
/// assignments agreeing with x outside the subset.  Exposed for testing.
qubo::QuboModel clamp_subproblem(const qubo::QuboModel& model,
                                 const std::vector<std::size_t>& subset,
                                 const qubo::Bits& x);

}  // namespace qross::solvers
