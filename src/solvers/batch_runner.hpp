#pragma once

// BatchRunner — the "one call to the QUBO solver" of the paper.
//
// Given a constrained problem and a relaxation parameter A, it builds the
// QUBO relaxation, runs the solver once, and reduces the batch to the
// quantities QROSS consumes: (Pf, Eavg, Estd, min fitness).  It also counts
// calls, since the paper's central metric is solution quality *per number of
// solver calls*.
//
// Parallelism: set SolveOptions::num_threads > 1 (or 0 for all hardware
// threads) and the solver fans its independent replicas across a thread
// pool — one shared sparse adjacency, per-worker evaluator state — with
// bit-identical results to the sequential path.  (Parallel tempering's
// exchange-coupled ladder is the exception; it runs sequentially.)
//
// Cancellation: the SolveOptions handed to the constructor carries the
// cooperative StopToken and per-sweep progress callback; every run()
// forwards them into the solver call, so a tuning session can be aborted
// mid-trial within one sweep.

#include <cstddef>
#include <vector>

#include "qubo/batch.hpp"
#include "qubo/builder.hpp"
#include "solvers/solver.hpp"

namespace qross::solvers {

/// One labelled observation of the solver's response at parameter A.
struct SolverSample {
  double relaxation_parameter = 0.0;
  qubo::BatchStats stats;
};

class BatchRunner {
 public:
  /// `problem` must outlive the runner.  Each call uses a fresh seed derived
  /// from (base_seed, call index) so repeated calls at the same A differ,
  /// like repeated submissions to a real annealer.
  BatchRunner(const qubo::ConstrainedProblem& problem, SolverPtr solver,
              SolveOptions options);

  /// One solver call at relaxation parameter A.
  SolverSample run(double relaxation_parameter);

  std::size_t num_calls() const { return num_calls_; }
  const std::vector<SolverSample>& history() const { return history_; }
  const qubo::ConstrainedProblem& problem() const { return problem_; }

  /// Best (lowest) feasible fitness observed over all calls so far; +inf if
  /// no feasible solution has been seen.
  double best_fitness() const;

 private:
  const qubo::ConstrainedProblem& problem_;
  SolverPtr solver_;
  SolveOptions options_;
  std::size_t num_calls_ = 0;
  std::vector<SolverSample> history_;
};

}  // namespace qross::solvers
