#pragma once

// Replica fan-out shared by the solver kernels.
//
// Every solver's replicas are independent given (seed, replica index): each
// body call owns its Rng and its IncrementalEvaluator over the one shared
// SparseAdjacency, and writes to a pre-assigned batch slot.  Results are
// therefore bit-identical whether replicas run sequentially or across a
// thread pool — only wall-clock changes.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>

#include "common/thread_pool.hpp"

namespace qross::solvers {

/// Runs body(replica) for replica in [0, count).  num_threads == 1 runs
/// inline (the default, no pool spun up); 0 uses all hardware threads.
inline void for_each_replica(std::size_t count, std::size_t num_threads,
                             const std::function<void(std::size_t)>& body) {
  if (num_threads == 1 || count <= 1) {
    for (std::size_t r = 0; r < count; ++r) body(r);
    return;
  }
  // Never spawn more workers than there are replicas — the pool starts (and
  // later joins) every worker eagerly, so idle ones are pure overhead.
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t workers =
      std::min(num_threads == 0 ? hardware : num_threads, count);
  // The pool itself terminates on a throwing task, so capture the first
  // exception and rethrow it here — the threaded path must keep the
  // sequential path's recoverable-throw semantics (QROSS_REQUIRE throws
  // std::invalid_argument by design).
  std::exception_ptr first_error;
  std::atomic_flag error_claimed = ATOMIC_FLAG_INIT;
  ThreadPool pool(workers);
  pool.parallel_for(count, [&](std::size_t r) {
    try {
      body(r);
    } catch (...) {
      if (!error_claimed.test_and_set()) first_error = std::current_exception();
    }
  });
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs body(first_replica, lane_count) for consecutive replica blocks of
/// size `block` covering [0, count) — the fan-out unit of the SIMD solvers.
/// The partition depends only on (count, block), never on num_threads, so a
/// block's lanes (and their derive_seed(seed, replica) RNG streams) are the
/// same whether blocks run sequentially or on the pool: batches stay
/// bit-identical for any thread count, like for_each_replica.
inline void for_each_replica_block(
    std::size_t count, std::size_t block, std::size_t num_threads,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t blocks = (count + block - 1) / block;
  for_each_replica(blocks, num_threads, [&](std::size_t b) {
    const std::size_t first = b * block;
    body(first, std::min(block, count - first));
  });
}

}  // namespace qross::solvers
