#include "solvers/digital_annealer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/aligned.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/replica_block.hpp"
#include "qubo/sparse.hpp"
#include "solvers/delta_scale.hpp"
#include "solvers/replica_for.hpp"

namespace qross::solvers {

namespace {

constexpr std::size_t kBlockLanes = 8;

}  // namespace

DigitalAnnealer::DigitalAnnealer(DaParams params) : params_(params) {
  QROSS_REQUIRE(params_.initial_acceptance > 0.0 &&
                    params_.initial_acceptance < 1.0,
                "initial acceptance in (0,1)");
  QROSS_REQUIRE(params_.final_acceptance > 0.0 &&
                    params_.final_acceptance < params_.initial_acceptance,
                "final acceptance in (0, initial)");
  QROSS_REQUIRE(params_.offset_increase_rate > 0.0,
                "offset increase rate must be positive");
}

qubo::SolveBatch DigitalAnnealer::solve(const qubo::QuboModel& model,
                                        const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  qubo::SolveBatch batch;
  batch.results.resize(options.num_replicas);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }

  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);

  Rng probe_rng(derive_seed(options.seed, 0xda0ULL));
  const double typical_delta = probe_delta_scale(adjacency, probe_rng).typical;
  const double t_start = typical_delta / -std::log(params_.initial_acceptance);
  const double t_end = std::max(
      typical_delta * 1e-3 / -std::log(params_.final_acceptance),
      t_start * 1e-6);
  const double offset_step = params_.offset_increase_rate * typical_delta;

  const std::size_t sweeps = std::max<std::size_t>(1, options.num_sweeps);
  const double cooling =
      sweeps > 1 ? std::pow(t_end / t_start,
                            1.0 / static_cast<double>(sweeps - 1))
                 : 1.0;

  // The DA parallel-trial loop is naturally lockstep — every replica tests
  // ALL variables in ascending order each step — so replicas block straight
  // onto ReplicaBlockEvaluator with no schedule change: each lane's RNG
  // draw sequence, fields and energies are bitwise those of the pre-SIMD
  // per-replica kernel (config_digest is unchanged on purpose; cached
  // batches stay valid).  Only the delta reads vectorise; the one flip a
  // lane commits per step stays a scalar apply_flip_lane since lanes pick
  // divergent variables.
  for_each_replica_block(
      options.num_replicas, kBlockLanes, options.num_threads,
      [&](std::size_t first, std::size_t count) {
        qubo::ReplicaBlockEvaluator eval(adjacency, count);
        std::vector<Rng> rngs;
        rngs.reserve(count);
        std::vector<std::vector<std::size_t>> accepted(count);
        AlignedVector<double> deltas(eval.lane_stride(), 0.0);
        std::vector<double> offset(count, 0.0);
        std::vector<double> best_energy(count);
        std::vector<qubo::Bits> best_state(count);
        qubo::Bits x(n);
        for (std::size_t l = 0; l < count; ++l) {
          rngs.emplace_back(derive_seed(options.seed, first + l));
          accepted[l].reserve(n);
          for (auto& bit : x) bit = rngs[l].bernoulli(0.5) ? 1 : 0;
          eval.set_state(l, x);
          best_energy[l] = eval.energy(l);
          eval.extract_state(l, best_state[l]);
        }

        double temperature = t_start;
        // One DA "sweep" performs n parallel-trial steps, matching the
        // per-sweep flip-attempt budget of the SA kernel for fair
        // comparisons.
        for (std::size_t sweep = 0;
             sweep < sweeps && !options.stop.stop_requested(); ++sweep) {
          for (std::size_t step = 0; step < n; ++step) {
            for (std::size_t l = 0; l < count; ++l) accepted[l].clear();
            // Parallel trial: every variable runs the Metropolis test with
            // the dynamic offset relaxing the effective delta.  One
            // vectorised delta read serves the whole block per variable.
            for (std::size_t i = 0; i < n; ++i) {
              eval.compute_flip_deltas(i, deltas.data());
              for (std::size_t l = 0; l < count; ++l) {
                const double delta = deltas[l] - offset[l];
                if (delta <= 0.0 ||
                    rngs[l].uniform() < std::exp(-delta / temperature)) {
                  accepted[l].push_back(i);
                }
              }
            }
            for (std::size_t l = 0; l < count; ++l) {
              if (accepted[l].empty()) {
                offset[l] += offset_step;  // escape pressure grows
                continue;
              }
              const std::size_t pick = accepted[l][static_cast<std::size_t>(
                  rngs[l].uniform_int(accepted[l].size()))];
              eval.apply_flip_lane(l, pick);
              offset[l] = 0.0;  // reset after an accepted move
              if (eval.energy(l) < best_energy[l]) {
                best_energy[l] = eval.energy(l);
                eval.extract_state(l, best_state[l]);
              }
            }
          }
          temperature *= cooling;
          if (block_sweep_checkpoint(options, count)) break;
        }
        for (std::size_t l = 0; l < count; ++l) {
          batch.results[first + l].assignment = std::move(best_state[l]);
          batch.results[first + l].qubo_energy = best_energy[l];
        }
      });
  return batch;
}

}  // namespace qross::solvers
