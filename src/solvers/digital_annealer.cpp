#include "solvers/digital_annealer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/incremental.hpp"
#include "qubo/sparse.hpp"
#include "solvers/delta_scale.hpp"
#include "solvers/replica_for.hpp"

namespace qross::solvers {

DigitalAnnealer::DigitalAnnealer(DaParams params) : params_(params) {
  QROSS_REQUIRE(params_.initial_acceptance > 0.0 &&
                    params_.initial_acceptance < 1.0,
                "initial acceptance in (0,1)");
  QROSS_REQUIRE(params_.final_acceptance > 0.0 &&
                    params_.final_acceptance < params_.initial_acceptance,
                "final acceptance in (0, initial)");
  QROSS_REQUIRE(params_.offset_increase_rate > 0.0,
                "offset increase rate must be positive");
}

qubo::SolveBatch DigitalAnnealer::solve(const qubo::QuboModel& model,
                                        const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  qubo::SolveBatch batch;
  batch.results.resize(options.num_replicas);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }

  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);

  Rng probe_rng(derive_seed(options.seed, 0xda0ULL));
  const double typical_delta = probe_delta_scale(adjacency, probe_rng).typical;
  const double t_start = typical_delta / -std::log(params_.initial_acceptance);
  const double t_end = std::max(
      typical_delta * 1e-3 / -std::log(params_.final_acceptance),
      t_start * 1e-6);
  const double offset_step = params_.offset_increase_rate * typical_delta;

  const std::size_t sweeps = std::max<std::size_t>(1, options.num_sweeps);
  const double cooling =
      sweeps > 1 ? std::pow(t_end / t_start,
                            1.0 / static_cast<double>(sweeps - 1))
                 : 1.0;

  for_each_replica(
      options.num_replicas, options.num_threads, [&](std::size_t replica) {
        Rng rng(derive_seed(options.seed, replica));
        qubo::IncrementalEvaluator eval(adjacency);
        std::vector<std::size_t> accepted;
        accepted.reserve(n);
        qubo::Bits x(n);
        for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
        eval.set_state(x);

        double temperature = t_start;
        double offset = 0.0;
        double best_energy = eval.energy();
        qubo::Bits best_state = eval.state();

        // One DA "sweep" performs n parallel-trial steps, matching the
        // per-sweep flip-attempt budget of the SA kernel for fair
        // comparisons.
        for (std::size_t sweep = 0;
             sweep < sweeps && !options.stop.stop_requested(); ++sweep) {
          for (std::size_t step = 0; step < n; ++step) {
            accepted.clear();
            // Parallel trial: every variable runs the Metropolis test with
            // the dynamic offset relaxing the effective delta.
            for (std::size_t i = 0; i < n; ++i) {
              const double delta = eval.flip_delta(i) - offset;
              if (delta <= 0.0 ||
                  rng.uniform() < std::exp(-delta / temperature)) {
                accepted.push_back(i);
              }
            }
            if (accepted.empty()) {
              offset += offset_step;  // escape pressure grows
              continue;
            }
            const std::size_t pick = accepted[static_cast<std::size_t>(
                rng.uniform_int(accepted.size()))];
            eval.apply_flip(pick);
            offset = 0.0;  // reset after an accepted move
            if (eval.energy() < best_energy) {
              best_energy = eval.energy();
              best_state = eval.state();
            }
          }
          temperature *= cooling;
          if (sweep_checkpoint(options)) break;
        }
        batch.results[replica].assignment = std::move(best_state);
        batch.results[replica].qubo_energy = best_energy;
      });
  return batch;
}

}  // namespace qross::solvers
