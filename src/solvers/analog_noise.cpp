#include "solvers/analog_noise.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/sparse.hpp"

namespace qross::solvers {

qubo::QuboModel perturb_coefficients(const qubo::QuboModel& model,
                                     double noise_stddev, std::uint64_t seed) {
  QROSS_REQUIRE(noise_stddev >= 0.0, "noise stddev must be non-negative");
  const std::size_t n = model.num_vars();
  qubo::QuboModel noisy(n);
  noisy.set_offset(model.offset());
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double w = model.coefficient(i, j);
      if (w == 0.0) continue;  // absent couplers carry no analog error
      noisy.add_term(i, j, w + rng.normal(0.0, noise_stddev));
    }
  }
  return noisy;
}

AnalogNoiseSolver::AnalogNoiseSolver(SolverPtr inner, AnalogNoiseParams params)
    : inner_(std::move(inner)), params_(params) {
  QROSS_REQUIRE(inner_ != nullptr, "inner solver required");
  QROSS_REQUIRE(params_.relative_precision >= 0.0,
                "relative precision must be non-negative");
  QROSS_REQUIRE(params_.num_noise_samples >= 1, "at least one noise sample");
}

std::string AnalogNoiseSolver::name() const {
  return inner_->name() + "+analog_noise";
}

qubo::SolveBatch AnalogNoiseSolver::solve(const qubo::QuboModel& model,
                                          const SolveOptions& options) const {
  const double noise_stddev =
      params_.relative_precision * model.max_abs_coefficient();
  const std::size_t samples =
      std::min(params_.num_noise_samples, std::max<std::size_t>(options.num_replicas, 1));

  // True-energy rescoring of every returned solution runs on one sparse
  // adjacency of the clean model, O(nnz) per solution.
  const qubo::SparseAdjacencyPtr clean = qubo::SparseAdjacency::build(model);

  qubo::SolveBatch combined;
  combined.results.reserve(options.num_replicas);
  std::size_t remaining = options.num_replicas;
  for (std::size_t s = 0; s < samples; ++s) {
    // The inner options copy carries options.stop and options.on_sweep, so
    // the wrapped kernel honours cancellation; this check just skips the
    // remaining noise draws once signalled.
    if (options.stop.stop_requested()) break;
    const std::size_t share = remaining / (samples - s);
    remaining -= share;
    if (share == 0) continue;
    const qubo::QuboModel noisy = perturb_coefficients(
        model, noise_stddev, derive_seed(options.seed, 0xa0a0ULL + s));
    SolveOptions inner_options = options;
    inner_options.num_replicas = share;
    inner_options.seed = derive_seed(options.seed, s);
    qubo::SolveBatch inner_batch = inner_->solve(noisy, inner_options);
    for (auto& result : inner_batch.results) {
      // Report the true energy of the solution found on the noisy landscape.
      result.qubo_energy = clean->energy(result.assignment);
      combined.results.push_back(std::move(result));
    }
  }
  if (combined.results.empty() && options.num_replicas > 0) {
    // Stopped before the first noise draw: still report valid (random)
    // assignments so downstream batch evaluation stays total, matching the
    // kernels' own stopped-before-start fallback.
    Rng rng(derive_seed(options.seed, 0xfa11ULL));
    combined.results.resize(options.num_replicas);
    for (auto& result : combined.results) {
      qubo::Bits x(model.num_vars());
      for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
      result.qubo_energy = clean->energy(x);
      result.assignment = std::move(x);
    }
  }
  return combined;
}

}  // namespace qross::solvers
