#include "solvers/simulated_annealer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/aligned.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/replica_block.hpp"
#include "qubo/sparse.hpp"
#include "solvers/delta_scale.hpp"
#include "solvers/replica_for.hpp"

namespace qross::solvers {

namespace {

// Replicas per ReplicaBlockEvaluator: two __m256d groups — wide enough to
// amortise each CSR row load over 8 lanes, small enough that a block's hot
// state stays cache-resident and small batches still fan out across
// threads.
constexpr std::size_t kBlockLanes = 8;

// Stream tag for the shared proposal sequence (distinct from the per-replica
// acceptance streams derive_seed(seed, replica) and the probe stream).
constexpr std::uint64_t kProposalStream = 0x50a11ab5c0ffee01ULL;

}  // namespace

SimulatedAnnealer::SimulatedAnnealer(SaParams params) : params_(params) {
  QROSS_REQUIRE(params_.initial_acceptance > 0.0 &&
                    params_.initial_acceptance < 1.0,
                "initial acceptance in (0,1)");
  QROSS_REQUIRE(params_.temperature_ratio > 0.0 &&
                    params_.temperature_ratio < 1.0,
                "temperature ratio in (0, 1)");
  QROSS_REQUIRE(params_.restarts >= 1, "at least one restart");
}

qubo::SolveBatch SimulatedAnnealer::solve(const qubo::QuboModel& model,
                                          const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  qubo::SolveBatch batch;
  batch.results.resize(options.num_replicas);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }

  // One shared immutable adjacency for the probe and every replica block.
  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);

  Rng probe_rng(derive_seed(options.seed, 0xabcdefULL));
  const DeltaScale scale = probe_delta_scale(adjacency, probe_rng);
  // T such that exp(-delta/T) == acceptance  =>  T = delta / -ln(acceptance).
  const double t_start =
      scale.typical / -std::log(params_.initial_acceptance);
  const double t_end = t_start * params_.temperature_ratio;

  const std::size_t sweeps = std::max<std::size_t>(1, options.num_sweeps);
  const double cooling =
      sweeps > 1 ? std::pow(t_end / t_start,
                            1.0 / static_cast<double>(sweeps - 1))
                 : 1.0;

  // Replicas run in SIMD blocks of kBlockLanes.  All lanes of a block step
  // in lockstep through one proposal stream derived from the block's first
  // replica index (the partition depends only on batch size and
  // kBlockLanes, never on num_threads), while acceptance draws come from
  // each replica's own derive_seed(seed, replica) stream — batches stay
  // bit-identical across thread counts and across the scalar/AVX2 dispatch
  // arms, and different blocks still explore different proposal sequences.
  for_each_replica_block(
      options.num_replicas, kBlockLanes, options.num_threads,
      [&](std::size_t first, std::size_t count) {
        qubo::ReplicaBlockEvaluator eval(adjacency, count);
        std::vector<Rng> rngs;
        rngs.reserve(count);
        for (std::size_t l = 0; l < count; ++l) {
          rngs.emplace_back(derive_seed(options.seed, first + l));
        }
        Rng proposal_rng(
            derive_seed(derive_seed(options.seed, kProposalStream), first));
        AlignedVector<double> deltas(eval.lane_stride(), 0.0);
        std::vector<std::uint64_t> accept(eval.mask_words(), 0);
        std::vector<double> best_energy(
            count, std::numeric_limits<double>::infinity());
        std::vector<qubo::Bits> best_state(count);
        std::vector<double> local_best(count);
        std::vector<qubo::Bits> local_best_state(count);
        std::vector<std::uint32_t> order(n);
        for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
        qubo::Bits x(n);
        for (std::size_t restart = 0;
             restart < params_.restarts && !options.stop.stop_requested();
             ++restart) {
          for (std::size_t l = 0; l < count; ++l) {
            for (auto& bit : x) bit = rngs[l].bernoulli(0.5) ? 1 : 0;
            eval.set_state(l, x);
            local_best[l] = eval.energy(l);
            eval.extract_state(l, local_best_state[l]);
          }
          double temperature = t_start;
          for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
            // Random-scan sweep: a fresh permutation per sweep guarantees
            // every variable one attempt per sweep (the classic
            // variance-reduced SA schedule) while all lanes still share the
            // proposal order.
            for (std::size_t step = n; step > 1; --step) {
              const auto j =
                  static_cast<std::size_t>(proposal_rng.uniform_int(step));
              std::swap(order[step - 1], order[j]);
            }
            for (std::size_t step = 0; step < n; ++step) {
              const std::size_t i = order[step];
              eval.compute_flip_deltas(i, deltas.data());
              std::fill(accept.begin(), accept.end(), 0);
              bool any = false;
              for (std::size_t l = 0; l < count; ++l) {
                const double delta = deltas[l];
                if (delta <= 0.0 ||
                    rngs[l].uniform() < std::exp(-delta / temperature)) {
                  accept[l / 64] |= std::uint64_t{1} << (l % 64);
                  any = true;
                }
              }
              if (!any) continue;
              eval.apply_flips(i, accept.data(), deltas.data());
              for (std::size_t l = 0; l < count; ++l) {
                if ((accept[l / 64] >> (l % 64)) & 1u &&
                    eval.energy(l) < local_best[l]) {
                  local_best[l] = eval.energy(l);
                  eval.extract_state(l, local_best_state[l]);
                }
              }
            }
            temperature *= cooling;
            if (block_sweep_checkpoint(options, count)) break;
          }
          // Greedy quench: deterministic first-improvement passes until no
          // lane has a strictly improving flip.  Strict < keeps termination
          // guaranteed (energy decreases by a positive amount per flip) and
          // the pass is RNG-free, so it is shared by both dispatch arms.
          bool improved = true;
          while (improved && !options.stop.stop_requested()) {
            improved = false;
            for (std::size_t i = 0; i < n; ++i) {
              eval.compute_flip_deltas(i, deltas.data());
              std::fill(accept.begin(), accept.end(), 0);
              bool any = false;
              for (std::size_t l = 0; l < count; ++l) {
                if (deltas[l] < 0.0) {
                  accept[l / 64] |= std::uint64_t{1} << (l % 64);
                  any = true;
                }
              }
              if (!any) continue;
              improved = true;
              eval.apply_flips(i, accept.data(), deltas.data());
              for (std::size_t l = 0; l < count; ++l) {
                if ((accept[l / 64] >> (l % 64)) & 1u &&
                    eval.energy(l) < local_best[l]) {
                  local_best[l] = eval.energy(l);
                  eval.extract_state(l, local_best_state[l]);
                }
              }
            }
          }
          for (std::size_t l = 0; l < count; ++l) {
            if (local_best[l] < best_energy[l]) {
              best_energy[l] = local_best[l];
              best_state[l] = local_best_state[l];
            }
          }
        }
        for (std::size_t l = 0; l < count; ++l) {
          // A replica stopped before its first restart still reports a valid
          // (random) assignment so downstream batch evaluation stays total.
          if (best_state[l].empty()) {
            for (auto& bit : x) bit = rngs[l].bernoulli(0.5) ? 1 : 0;
            eval.set_state(l, x);
            best_state[l] = x;
            best_energy[l] = eval.energy(l);
          }
          batch.results[first + l].assignment = std::move(best_state[l]);
          batch.results[first + l].qubo_energy = best_energy[l];
        }
      });
  return batch;
}

}  // namespace qross::solvers
