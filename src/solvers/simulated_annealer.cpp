#include "solvers/simulated_annealer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "qubo/incremental.hpp"
#include "qubo/sparse.hpp"
#include "solvers/delta_scale.hpp"
#include "solvers/replica_for.hpp"

namespace qross::solvers {

SimulatedAnnealer::SimulatedAnnealer(SaParams params) : params_(params) {
  QROSS_REQUIRE(params_.initial_acceptance > 0.0 &&
                    params_.initial_acceptance < 1.0,
                "initial acceptance in (0,1)");
  QROSS_REQUIRE(params_.temperature_ratio > 0.0 &&
                    params_.temperature_ratio < 1.0,
                "temperature ratio in (0, 1)");
  QROSS_REQUIRE(params_.restarts >= 1, "at least one restart");
}

qubo::SolveBatch SimulatedAnnealer::solve(const qubo::QuboModel& model,
                                          const SolveOptions& options) const {
  const std::size_t n = model.num_vars();
  qubo::SolveBatch batch;
  batch.results.resize(options.num_replicas);
  if (n == 0) {
    for (auto& r : batch.results) r.qubo_energy = model.offset();
    return batch;
  }

  // One shared immutable adjacency for the probe and every replica.
  const qubo::SparseAdjacencyPtr adjacency = qubo::SparseAdjacency::build(model);

  Rng probe_rng(derive_seed(options.seed, 0xabcdefULL));
  const DeltaScale scale = probe_delta_scale(adjacency, probe_rng);
  // T such that exp(-delta/T) == acceptance  =>  T = delta / -ln(acceptance).
  const double t_start =
      scale.typical / -std::log(params_.initial_acceptance);
  const double t_end = t_start * params_.temperature_ratio;

  const std::size_t sweeps = std::max<std::size_t>(1, options.num_sweeps);
  const double cooling =
      sweeps > 1 ? std::pow(t_end / t_start,
                            1.0 / static_cast<double>(sweeps - 1))
                 : 1.0;

  for_each_replica(
      options.num_replicas, options.num_threads, [&](std::size_t replica) {
        Rng rng(derive_seed(options.seed, replica));
        qubo::IncrementalEvaluator eval(adjacency);
        qubo::Bits best_state;
        double best_energy = std::numeric_limits<double>::infinity();
        for (std::size_t restart = 0;
             restart < params_.restarts && !options.stop.stop_requested();
             ++restart) {
          qubo::Bits x(n);
          for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
          eval.set_state(x);
          double temperature = t_start;
          double local_best = eval.energy();
          qubo::Bits local_best_state = eval.state();
          for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
            for (std::size_t step = 0; step < n; ++step) {
              const auto i = static_cast<std::size_t>(rng.uniform_int(n));
              const double delta = eval.flip_delta(i);
              if (delta <= 0.0 ||
                  rng.uniform() < std::exp(-delta / temperature)) {
                eval.apply_flip(i);
                if (eval.energy() < local_best) {
                  local_best = eval.energy();
                  local_best_state = eval.state();
                }
              }
            }
            temperature *= cooling;
            if (sweep_checkpoint(options)) break;
          }
          if (local_best < best_energy) {
            best_energy = local_best;
            best_state = std::move(local_best_state);
          }
        }
        // A replica stopped before its first restart still reports a valid
        // (random) assignment so downstream batch evaluation stays total.
        if (best_state.empty()) {
          qubo::Bits x(n);
          for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
          eval.set_state(x);
          best_state = eval.state();
          best_energy = eval.energy();
        }
        batch.results[replica].assignment = std::move(best_state);
        batch.results[replica].qubo_energy = best_energy;
      });
  return batch;
}

}  // namespace qross::solvers
