#pragma once

// Abstract QUBO solver interface.
//
// All solvers are stochastic batch solvers: one call returns `num_replicas`
// independent solutions, mirroring how the Fujitsu Digital Annealer and
// Qbsolv are used in the paper (128 solutions per call, paper Fig. 1).
// Determinism: the same (model, options.seed) pair always yields the same
// batch.

#include <cstdint>
#include <memory>
#include <string>

#include "qubo/batch.hpp"
#include "qubo/model.hpp"

namespace qross::solvers {

struct SolveOptions {
  /// Number of independent solutions per call (the paper's batch size B).
  std::size_t num_replicas = 32;
  /// Monte-Carlo sweeps (full variable passes) per replica, where relevant.
  std::size_t num_sweeps = 100;
  /// Master seed; replica k uses derive_seed(seed, k).
  std::uint64_t seed = 1;
  /// Worker threads for the independent-replica fan-out: 1 = sequential
  /// (default), 0 = all hardware threads.  Replicas share one immutable
  /// sparse adjacency and own their state, so the batch is bit-identical
  /// for any thread count.  Parallel tempering is the exception: its
  /// chains are coupled by replica exchange, so the ladder always runs
  /// sequentially and this option is ignored.
  std::size_t num_threads = 1;
};

class QuboSolver {
 public:
  virtual ~QuboSolver() = default;

  /// Human-readable solver name ("sa", "da", "qbsolv", ...).
  virtual std::string name() const = 0;

  /// Solves `model`, returning options.num_replicas solutions.
  virtual qubo::SolveBatch solve(const qubo::QuboModel& model,
                                 const SolveOptions& options) const = 0;
};

using SolverPtr = std::shared_ptr<const QuboSolver>;

}  // namespace qross::solvers
