#pragma once

// Abstract QUBO solver interface.
//
// All solvers are stochastic batch solvers: one call returns `num_replicas`
// independent solutions, mirroring how the Fujitsu Digital Annealer and
// Qbsolv are used in the paper (128 solutions per call, paper Fig. 1).
// Determinism: the same (model, options.seed) pair always yields the same
// batch — as long as the solve is not cooperatively stopped partway.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/hash.hpp"
#include "qubo/batch.hpp"
#include "qubo/model.hpp"

namespace qross::solvers {

/// Cooperative cancellation flag shared between a solve call and whoever
/// wants to stop it (the SolveService, a deadline watchdog, a Ctrl-C
/// handler).  A default-constructed token is inert: it can never be
/// signalled, costs nothing, and keeps plain synchronous `solve()` calls
/// unchanged.  `StopToken::create()` allocates a real shared flag; copies
/// share it.  All kernels poll the token at sweep granularity, so a
/// signalled solve returns (with the best states found so far) within one
/// sweep per in-flight replica instead of running to completion.
class StopToken {
 public:
  StopToken() = default;

  /// A token with a live flag that request_stop() can trip.
  static StopToken create() {
    StopToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// False for the inert default token: request_stop() cannot reach it.
  bool stop_possible() const { return flag_ != nullptr; }

  bool stop_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  void request_stop() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-sweep progress tick.  Invoked once per completed sweep of each
/// replica (≈ one full variable pass of work); with num_threads > 1 it is
/// called concurrently from worker threads, so it must be thread-safe.
using SweepProgressFn = std::function<void()>;

struct SolveOptions {
  /// Number of independent solutions per call (the paper's batch size B).
  std::size_t num_replicas = 32;
  /// Monte-Carlo sweeps (full variable passes) per replica, where relevant.
  std::size_t num_sweeps = 100;
  /// Master seed; replica k uses derive_seed(seed, k).
  std::uint64_t seed = 1;
  /// Worker threads for the independent-replica fan-out: 1 = sequential
  /// (default), 0 = all hardware threads.  Replicas share one immutable
  /// sparse adjacency and own their state, so the batch is bit-identical
  /// for any thread count.  Parallel tempering is the exception: its
  /// chains are coupled by replica exchange, so the ladder always runs
  /// sequentially and this option is ignored.
  std::size_t num_threads = 1;
  /// Cooperative cancellation: kernels poll this at sweep boundaries and
  /// return early (partial batch, best-so-far states) once signalled.
  /// Inert by default.  Not part of the result-cache fingerprint.
  StopToken stop = {};
  /// Optional per-sweep progress callback (see SweepProgressFn).  Null by
  /// default.  Not part of the result-cache fingerprint.
  SweepProgressFn on_sweep = {};
};

/// Sweep boundary checkpoint shared by the kernels: ticks the progress
/// callback, then reports whether the solve should stop.  Call once after
/// each completed sweep.
inline bool sweep_checkpoint(const SolveOptions& options) {
  if (options.on_sweep) options.on_sweep();
  return options.stop.stop_requested();
}

/// Sweep checkpoint for a replica *block*: one block sweep advances every
/// lane by one sweep, so the progress callback ticks `lanes` times — total
/// tick counts match the scalar per-replica kernels exactly.
inline bool block_sweep_checkpoint(const SolveOptions& options,
                                   std::size_t lanes) {
  if (options.on_sweep) {
    for (std::size_t l = 0; l < lanes; ++l) options.on_sweep();
  }
  return options.stop.stop_requested();
}

class QuboSolver {
 public:
  virtual ~QuboSolver() = default;

  /// Human-readable solver name ("sa", "da", "qbsolv", ...).
  virtual std::string name() const = 0;

  /// Stable digest of the solver's configuration, mixed into the service's
  /// result-cache fingerprint so two differently-parameterised instances of
  /// the same kernel never collide on a cache entry.  The default hashes
  /// name() only; solvers with tunable parameters override it.
  virtual std::uint64_t config_digest() const {
    return Hash64().mix(std::string_view(name())).digest();
  }

  /// Solves `model`, returning options.num_replicas solutions (fewer
  /// full-quality ones if options.stop was signalled mid-call).
  virtual qubo::SolveBatch solve(const qubo::QuboModel& model,
                                 const SolveOptions& options) const = 0;
};

using SolverPtr = std::shared_ptr<const QuboSolver>;

}  // namespace qross::solvers
