#pragma once

// Analog control-error decorator (paper appendix B).
//
// Physical annealers implement Hamiltonian coefficients imperfectly: the
// realised coefficient differs from the intended one by a small analog error
// proportional to the device's dynamic range.  When the penalty weight
// dominates the QUBO, the original objective sinks below this error floor
// and solution quality degrades — the mechanism behind Fig. 6.
//
// AnalogNoiseSolver wraps any QuboSolver.  Before each inner solve it
// perturbs every nonzero coefficient with Gaussian noise of standard
// deviation `relative_precision * max_abs_coefficient`, i.e. a fixed number
// of effective bits over the full coefficient range, then reports the
// *true* (unperturbed) energies of the returned solutions.

#include "solvers/solver.hpp"

namespace qross::solvers {

struct AnalogNoiseParams {
  /// Noise stddev as a fraction of the largest |coefficient|.  The DW_2000Q
  /// integrated control error is of order 1e-2 relative to full scale.
  double relative_precision = 0.02;
  /// Independent noise draws (solver calls); replicas are split across them.
  std::size_t num_noise_samples = 4;
};

class AnalogNoiseSolver final : public QuboSolver {
 public:
  AnalogNoiseSolver(SolverPtr inner, AnalogNoiseParams params = {});

  std::string name() const override;
  std::uint64_t config_digest() const override {
    return Hash64()
        .mix(std::string_view("analog_noise"))
        .mix(inner_->config_digest())
        .mix(params_.relative_precision)
        .mix(static_cast<std::uint64_t>(params_.num_noise_samples))
        .digest();
  }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const SolveOptions& options) const override;

 private:
  SolverPtr inner_;
  AnalogNoiseParams params_;
};

/// Returns a copy of `model` with Gaussian coefficient noise applied.
/// Exposed for testing and for the Fig. 6 bench.
qubo::QuboModel perturb_coefficients(const qubo::QuboModel& model,
                                     double noise_stddev, std::uint64_t seed);

}  // namespace qross::solvers
