#pragma once

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with a Prometheus-style text exposition.  Registration takes a
// mutex and returns a stable pointer; the instruments themselves are updated
// with atomics only, so hot paths (per-sweep ticks, per-frame counters) never
// contend on the registry lock.
//
// Naming follows Prometheus conventions: snake_case, `_total` suffix on
// counters, the unit in the name (`_ms`).  Names are unique across kinds —
// registering an existing name with a different kind (or a histogram with
// different buckets) throws.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace qross::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value that can go up and down.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with cumulative Prometheus semantics: bucket i
/// counts observations <= bounds[i], plus an implicit +Inf bucket.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket,
  /// so the vector has bounds().size() + 1 entries.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class Registry {
 public:
  /// Registers (or fetches) an instrument.  Pointers stay valid for the
  /// registry's lifetime.  `help` is recorded on first registration.
  Counter* counter(const std::string& name, const std::string& help = "")
      EXCLUDES(m_);
  Gauge* gauge(const std::string& name, const std::string& help = "")
      EXCLUDES(m_);
  Histogram* histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "") EXCLUDES(m_);

  /// Prometheus text exposition: `# HELP` / `# TYPE` lines, cumulative
  /// histogram `_bucket{le=...}` series ending in `le="+Inf"`, `_sum`,
  /// `_count`.  Metric families sorted by name.
  std::string render_prometheus() const EXCLUDES(m_);

 private:
  enum class Kind { counter, gauge, histogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_locked(const std::string& name, Kind kind,
                      const std::string& help) REQUIRES(m_);

  mutable Mutex m_;
  /// Sorted → stable exposition order.  The map is guarded; the instruments
  /// it owns are atomics-only and updated lock-free through stable pointers.
  std::map<std::string, Entry> entries_ GUARDED_BY(m_);
};

/// Process-global registry (leaked, like the trace recorder, so instrumented
/// destructors during static teardown stay safe).
Registry& registry();

}  // namespace qross::obs
