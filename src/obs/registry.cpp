#include "obs/registry.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace qross::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_count(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_le(std::string& out, double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  out += buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  QROSS_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  QROSS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be strictly ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (
      !sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

Registry::Entry& Registry::entry_locked(const std::string& name, Kind kind,
                                        const std::string& help) {
  QROSS_REQUIRE(!name.empty(), "metric name must be non-empty");
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    QROSS_REQUIRE(it->second.kind == kind,
                  "metric registered twice with different kinds");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  return entries_.emplace(name, std::move(entry)).first->second;
}

Counter* Registry::counter(const std::string& name, const std::string& help) {
  MutexLock lock(m_);
  Entry& e = entry_locked(name, Kind::counter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* Registry::gauge(const std::string& name, const std::string& help) {
  MutexLock lock(m_);
  Entry& e = entry_locked(name, Kind::gauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& help) {
  MutexLock lock(m_);
  // Validate the bounds BEFORE touching the map: a throwing constructor must
  // not leave a half-registered entry behind for render_prometheus to trip on.
  auto built = std::make_unique<Histogram>(bounds);
  Entry& e = entry_locked(name, Kind::histogram, help);
  if (!e.histogram) {
    e.histogram = std::move(built);
  } else {
    QROSS_REQUIRE(e.histogram->bounds() == bounds,
                  "histogram re-registered with different buckets");
  }
  return e.histogram.get();
}

std::string Registry::render_prometheus() const {
  MutexLock lock(m_);
  std::string out;
  out.reserve(entries_.size() * 128);
  for (const auto& [name, e] : entries_) {
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    switch (e.kind) {
      case Kind::counter:
        out += "# TYPE " + name + " counter\n" + name + " ";
        append_count(out, e.counter->value());
        out += '\n';
        break;
      case Kind::gauge:
        out += "# TYPE " + name + " gauge\n" + name + " ";
        append_number(out, e.gauge->value());
        out += '\n';
        break;
      case Kind::histogram: {
        out += "# TYPE " + name + " histogram\n";
        const auto& bounds = e.histogram->bounds();
        const auto counts = e.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          out += name + "_bucket{le=\"";
          append_le(out, bounds[i]);
          out += "\"} ";
          append_count(out, cumulative);
          out += '\n';
        }
        cumulative += counts.back();
        out += name + "_bucket{le=\"+Inf\"} ";
        append_count(out, cumulative);
        out += '\n';
        out += name + "_sum ";
        append_number(out, e.histogram->sum());
        out += '\n';
        out += name + "_count ";
        append_count(out, e.histogram->count());
        out += '\n';
        break;
      }
    }
  }
  return out;
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: see header
  return *r;
}

}  // namespace qross::obs
