#include "obs/trace.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qross::obs {

namespace {

/// Small dense thread ids (0, 1, 2, ...) in first-record order — stable
/// within a process and friendlier in trace viewers than OS tids.
std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::size_t env_capacity() {
  const char* raw = std::getenv("QROSS_TRACE_BUFFER");
  if (raw == nullptr || raw[0] == '\0') return TraceRecorder::kDefaultCapacity;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || v == 0) return TraceRecorder::kDefaultCapacity;
  return static_cast<std::size_t>(v);
}

bool env_enabled() {
  const char* raw = std::getenv("QROSS_TRACE");
  if (raw == nullptr) return false;
  return std::strcmp(raw, "1") == 0 || std::strcmp(raw, "true") == 0 ||
         std::strcmp(raw, "on") == 0;
}

/// JSON string escape for event names/categories.  These are static literals
/// in practice, but the exporter must never emit malformed JSON.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : epoch_(Clock::now()), capacity_(capacity == 0 ? 1 : capacity) {}

TraceRecorder& TraceRecorder::instance() {
  // Leaked on purpose: instrumented code (e.g. CacheStore compaction in a
  // destructor) may run during static teardown, after function-local statics
  // with destructors would already be gone.
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder(env_capacity());
    if (env_enabled()) r->enable();
    return r;
  }();
  return *recorder;
}

void TraceRecorder::enable(std::size_t capacity) {
  {
    MutexLock lock(m_);
    if (capacity != 0 && capacity != capacity_) {
      capacity_ = capacity;
      ring_.clear();
      ring_.shrink_to_fit();
      total_ = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  MutexLock lock(m_);
  ring_.clear();
  total_ = 0;
}

std::uint64_t TraceRecorder::since_epoch_ns(Clock::time_point tp) const {
  if (tp <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_)
          .count());
}

void TraceRecorder::push_locked(const TraceEvent& ev) {
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[total_ % capacity_] = ev;  // overwrite the oldest slot
  }
  ++total_;
}

void TraceRecorder::record_instant(const char* name, const char* cat,
                                   std::uint64_t a0, std::uint64_t a1) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ts_ns = since_epoch_ns(Clock::now());
  ev.name = name;
  ev.cat = cat;
  ev.a0 = a0;
  ev.a1 = a1;
  ev.tid = this_thread_id();
  ev.kind = EventKind::instant;
  MutexLock lock(m_);
  push_locked(ev);
}

void TraceRecorder::record_span(const char* name, const char* cat,
                                Clock::time_point start, Clock::time_point end,
                                std::uint64_t a0, std::uint64_t a1) {
  if (!enabled()) return;
  if (end < start) end = start;
  TraceEvent ev;
  ev.ts_ns = since_epoch_ns(start);
  ev.dur_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  ev.name = name;
  ev.cat = cat;
  ev.a0 = a0;
  ev.a1 = a1;
  ev.tid = this_thread_id();
  ev.kind = EventKind::span;
  MutexLock lock(m_);
  push_locked(ev);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  MutexLock lock(m_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_ || ring_.size() < capacity_) {
    out = ring_;
  } else {
    const std::size_t head = total_ % capacity_;  // oldest slot
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

std::uint64_t TraceRecorder::recorded() const {
  MutexLock lock(m_);
  return total_;
}

std::uint64_t TraceRecorder::evicted() const {
  MutexLock lock(m_);
  return total_ <= capacity_ ? 0 : total_ - capacity_;
}

std::size_t TraceRecorder::capacity() const {
  MutexLock lock(m_);
  return capacity_;
}

std::string chrome_trace_json(const TraceRecorder& recorder) {
  const std::vector<TraceEvent> events = recorder.snapshot();
  const std::uint64_t recorded = recorder.recorded();
  const std::uint64_t evicted = recorder.evicted();
  const int pid = static_cast<int>(::getpid());

  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.cat);
    out += "\",\"ph\":\"";
    out += ev.kind == EventKind::span ? 'X' : 'i';
    out += '"';
    if (ev.kind == EventKind::instant) out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%u,\"ts\":%.3f", pid,
                  ev.tid, static_cast<double>(ev.ts_ns) / 1000.0);
    out += buf;
    if (ev.kind == EventKind::span) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(ev.dur_ns) / 1000.0);
      out += buf;
    }
    if (ev.a0 != 0 || ev.a1 != 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"job\":%llu,\"trace\":%llu}",
                    static_cast<unsigned long long>(ev.a0),
                    static_cast<unsigned long long>(ev.a1));
      out += buf;
    }
    out += '}';
  }
  std::snprintf(buf, sizeof(buf),
                "],\"otherData\":{\"recorded\":%llu,\"evicted\":%llu}}",
                static_cast<unsigned long long>(recorded),
                static_cast<unsigned long long>(evicted));
  out += buf;
  return out;
}

}  // namespace qross::obs
