#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace qross::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::warn)};

bool needs_quoting(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void append_value(std::string& out, const std::string& v) {
  if (!needs_quoting(v)) {
    out += v;
    return;
  }
  out += '"';
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool parse_log_level(const std::string& text, LogLevel* out) {
  if (text == "debug") *out = LogLevel::debug;
  else if (text == "info") *out = LogLevel::info;
  else if (text == "warn") *out = LogLevel::warn;
  else if (text == "error") *out = LogLevel::error;
  else if (text == "off") *out = LogLevel::off;
  else return false;
  return true;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "?";
}

void log_event(
    LogLevel level, const char* event,
    std::initializer_list<std::pair<const char*, std::string>> fields) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed) ||
      level == LogLevel::off) {
    return;
  }

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char ts[80];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(ms));

  std::string line;
  line.reserve(96);
  line += "ts=";
  line += ts;
  line += " level=";
  line += log_level_name(level);
  line += " event=";
  line += event;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    append_value(line, value);
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace qross::obs
