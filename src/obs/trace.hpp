#pragma once

// Low-overhead in-process tracing: a bounded ring buffer of spans and instant
// events with monotonic timestamps, small integer thread ids, and static
// category strings.  The recorder is process-global (one solve daemon per
// process) and off by default; when disabled, the hot-path check is a single
// relaxed atomic load and nothing else runs.  When enabled, recording takes a
// leaf mutex — correctness and TSAN-cleanliness over lock-free cleverness,
// because tracing is opt-in and the disabled path is the one that must be
// free.
//
// Events carry up to two integer arguments (by convention a0 = job id,
// a1 = trace id) so a client-supplied trace id can stitch `qross remote`
// requests into server-side spans.  `chrome_trace_json` renders the buffer as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Environment:
//   QROSS_TRACE=1           enable tracing at process start
//   QROSS_TRACE_BUFFER=N    ring capacity in events (default 65536)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace qross::obs {

enum class EventKind : std::uint8_t { span, instant };

/// One trace event.  `name` and `cat` must be string literals (or otherwise
/// outlive the recorder) — the ring stores the pointers, not copies.
struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< start, ns since the recorder's epoch
  std::uint64_t dur_ns = 0;  ///< span duration; 0 for instants
  const char* name = "";
  const char* cat = "";
  std::uint64_t a0 = 0;  ///< convention: job id (0 = absent)
  std::uint64_t a1 = 0;  ///< convention: trace id (0 = absent)
  std::uint32_t tid = 0; ///< small per-process thread id, not the OS tid
  EventKind kind = EventKind::instant;
};

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kDefaultCapacity = 65536;

  /// Process-global recorder.  First call reads QROSS_TRACE /
  /// QROSS_TRACE_BUFFER; the instance is intentionally leaked so that
  /// instrumented destructors running during static teardown stay safe.
  static TraceRecorder& instance();

  /// The one hot-path check: a relaxed atomic load.  `enabled_` is an
  /// atomic, NOT guarded by m_ — the disabled path must never touch the
  /// ring mutex, which is why every recording entry point is EXCLUDES(m_):
  /// the lock is taken only after this check passes.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Enables recording.  `capacity` = 0 keeps the current ring capacity.
  void enable(std::size_t capacity = 0) EXCLUDES(m_);
  void disable();  ///< stops recording; the buffer is kept for dumping
  void clear() EXCLUDES(m_);  ///< drops buffered events and resets counters

  void record_instant(const char* name, const char* cat, std::uint64_t a0 = 0,
                      std::uint64_t a1 = 0) EXCLUDES(m_);
  /// Records a completed span from explicit timestamps (supports spans whose
  /// start predates the call, e.g. queue-wait measured at dispatch).
  void record_span(const char* name, const char* cat, Clock::time_point start,
                   Clock::time_point end, std::uint64_t a0 = 0,
                   std::uint64_t a1 = 0) EXCLUDES(m_);

  /// Buffered events, oldest first.
  std::vector<TraceEvent> snapshot() const EXCLUDES(m_);

  /// Exact monotonic counters — `recorded() - evicted()` is the buffered
  /// count, and both keep counting across ring wrap-around.
  std::uint64_t recorded() const EXCLUDES(m_);
  std::uint64_t evicted() const EXCLUDES(m_);
  std::size_t capacity() const EXCLUDES(m_);

  Clock::time_point epoch() const { return epoch_; }

 private:
  explicit TraceRecorder(std::size_t capacity);

  std::uint64_t since_epoch_ns(Clock::time_point tp) const;
  void push_locked(const TraceEvent& ev) REQUIRES(m_);

  std::atomic<bool> enabled_{false};
  Clock::time_point epoch_;

  mutable Mutex m_;
  std::vector<TraceEvent> ring_ GUARDED_BY(m_);
  std::size_t capacity_ GUARDED_BY(m_);
  std::uint64_t total_ GUARDED_BY(m_) = 0;  ///< events ever recorded
};

/// RAII span: captures the start time at construction and records on
/// destruction.  Cheap no-op when the recorder is disabled at construction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0)
      : armed_(TraceRecorder::instance().enabled()),
        name_(name),
        cat_(cat),
        a0_(a0),
        a1_(a1) {
    if (armed_) start_ = TraceRecorder::Clock::now();
  }
  ~ScopedSpan() {
    if (armed_) {
      TraceRecorder::instance().record_span(name_, cat_, start_,
                                            TraceRecorder::Clock::now(), a0_,
                                            a1_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool armed_;
  const char* name_;
  const char* cat_;
  std::uint64_t a0_;
  std::uint64_t a1_;
  TraceRecorder::Clock::time_point start_{};
};

/// Renders the recorder's buffer as Chrome trace-event JSON:
/// {"traceEvents":[...]} with ts/dur in microseconds.  Every event carries
/// the keys name, cat, ph, pid, tid, ts.
std::string chrome_trace_json(const TraceRecorder& recorder);

}  // namespace qross::obs
