#pragma once

// Minimal structured logging for the daemon and server: timestamped
// single-line key=value events on stderr.  The process-wide threshold
// defaults to `warn` so libraries and tests stay quiet; qrossd raises it to
// `info` (or whatever `--log-level` says) at startup.

#include <initializer_list>
#include <string>
#include <utility>

namespace qross::obs {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off"; false on anything else.
bool parse_log_level(const std::string& text, LogLevel* out);
const char* log_level_name(LogLevel level);

/// Emits one line:
///   ts=2026-08-08T12:00:00.123Z level=info event=conn_open client_id=cli
/// Values containing spaces, quotes, or '=' are double-quoted with minimal
/// escaping.  A single write keeps concurrent lines from interleaving.
void log_event(
    LogLevel level, const char* event,
    std::initializer_list<std::pair<const char*, std::string>> fields = {});

}  // namespace qross::obs
