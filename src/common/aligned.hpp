#pragma once

// Over-aligned storage for SIMD kernels.
//
// The AVX2 replica-block evaluator loads 32-byte vectors from its
// structure-of-arrays field rows; allocating them on a 64-byte boundary
// keeps every row group alignment-safe for aligned loads AND cacheline
// disjoint from its neighbours (no false sharing when blocks run on the
// thread pool).  AlignedVector is a std::vector with this allocator — the
// data pointer is guaranteed 64-byte aligned, everything else is vector.

#include <cstddef>
#include <new>
#include <vector>

namespace qross {

inline constexpr std::size_t kSimdAlignment = 64;

template <typename T, std::size_t Alignment = kSimdAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be 2^k");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace qross
