#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace qross {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  // Mix the stream index through an independent splitmix64 chain so that
  // (parent, 0), (parent, 1), ... are decorrelated.
  std::uint64_t state = parent ^ (0x6a09e667f3bcc909ULL + stream);
  (void)splitmix64(state);
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  QROSS_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  QROSS_ASSERT(n > 0);
  // Lemire's rejection method for unbiased bounded integers.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  QROSS_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  QROSS_ASSERT(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  QROSS_ASSERT(lambda > 0.0);
  return -std::log(1.0 - uniform()) / lambda;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace qross
