#include "common/gaussian.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "common/assert.hpp"

namespace qross {

double normal_pdf(double z) {
  static const double inv_sqrt_2pi = 1.0 / std::sqrt(2.0 * std::numbers::pi);
  return inv_sqrt_2pi * std::exp(-0.5 * z * z);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double normal_cdf(double z, double mean, double stddev) {
  QROSS_ASSERT(stddev >= 0.0);
  if (stddev == 0.0) return z < mean ? 0.0 : 1.0;
  return normal_cdf((z - mean) / stddev);
}

namespace {

// Acklam's inverse normal CDF approximation.
double acklam_quantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1.0 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double normal_quantile(double p) {
  QROSS_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile requires p in (0, 1)");
  double x = acklam_quantile(p);
  // One Halley refinement step drives the error below 1e-12.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2);
  x -= u / (1.0 + x * u / 2.0);
  return x;
}

double log_normal_cdf(double z) {
  if (z > -8.0) return std::log(normal_cdf(z));
  // Asymptotic expansion for large negative z:
  //   Phi(z) ~ phi(z)/(-z) * (1 - 1/z^2 + 3/z^4 - ...)
  const double z2 = z * z;
  const double series = 1.0 - 1.0 / z2 + 3.0 / (z2 * z2);
  return -0.5 * z2 - 0.5 * std::log(2.0 * std::numbers::pi) - std::log(-z) +
         std::log(series);
}

}  // namespace qross
