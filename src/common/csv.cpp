#include "common/csv.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace qross {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  QROSS_REQUIRE(!header_.empty(), "CSV table needs at least one column");
}

void CsvTable::add_row(std::vector<std::string> cells) {
  QROSS_REQUIRE(cells.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(cells));
}

void CsvTable::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(format_double(c, precision));
  add_row(std::move(formatted));
}

namespace {

std::string escape_csv(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvTable::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) os << ',';
    os << escape_csv(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape_csv(row[i]);
    }
    os << '\n';
  }
}

void CsvTable::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t w : widths) rule += std::string(w + 2, '-');
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

}  // namespace qross
