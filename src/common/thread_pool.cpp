#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace qross {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  QROSS_ASSERT(task != nullptr);
  {
    MutexLock lock(mutex_);
    QROSS_ASSERT_MSG(!stopping_, "submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Explicit loop, not a predicate lambda: the analysis treats a lambda as
  // an unlocked context, while here `in_flight_` is read under the lock.
  while (in_flight_ != 0) idle_.wait(lock.native());
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.size() == 1) {
    // Avoid queueing overhead in the common single-core case.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) task_available_.wait(lock.native());
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace qross
