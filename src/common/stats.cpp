#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace qross {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  QROSS_ASSERT(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  QROSS_ASSERT(n_ > 0);
  return max_;
}

SampleSummary summarize(std::span<const double> values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  SampleSummary s;
  s.count = rs.count();
  if (s.count == 0) return s;
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  return s;
}

double quantile(std::span<const double> values, double q) {
  QROSS_REQUIRE(!values.empty(), "quantile of empty sample");
  QROSS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level outside [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs) {
  QROSS_REQUIRE(!values.empty(), "quantiles of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    QROSS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level outside [0, 1]");
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(sorted[lo] * (1.0 - frac) + sorted[hi] * frac);
  }
  return out;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return summarize(values).stddev;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  QROSS_REQUIRE(xs.size() == ys.size(), "pearson requires equal lengths");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace qross
