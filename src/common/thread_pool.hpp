#pragma once

// Small fixed-size thread pool used to parallelise independent solver
// replicas and dataset generation.  Determinism is preserved because each
// work item owns its own seeded Rng; only scheduling order varies, and
// results are written to pre-assigned slots.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace qross {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware_concurrency,
  /// clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void wait_idle() EXCLUDES(mutex_);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// With a single worker this degenerates to a sequential loop.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      EXCLUDES(mutex_);

 private:
  void worker_loop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace qross
