#pragma once

// Small fixed-size thread pool used to parallelise independent solver
// replicas and dataset generation.  Determinism is preserved because each
// work item owns its own seeded Rng; only scheduling order varies, and
// results are written to pre-assigned slots.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qross {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means hardware_concurrency,
  /// clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// With a single worker this degenerates to a sequential loop.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace qross
