#pragma once

// Gaussian distribution math used by the expected-minimum-fitness integral
// (paper eq. (2) / appendix F) and by the Bayesian-optimisation baseline.

namespace qross {

/// Standard normal probability density.
double normal_pdf(double z);

/// Standard normal cumulative distribution function, Phi(z).
double normal_cdf(double z);

/// CDF of N(mean, stddev^2) at z.  stddev == 0 degenerates to a step.
double normal_cdf(double z, double mean, double stddev);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-12 over (1e-300, 1-1e-16)).
double normal_quantile(double p);

/// log(Phi(z)) computed without underflow for very negative z.
double log_normal_cdf(double z);

}  // namespace qross
