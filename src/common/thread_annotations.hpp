#pragma once

/// Clang Thread Safety Analysis shims + annotated mutex wrappers.
///
/// The locking discipline of every subsystem (which member a mutex guards,
/// which helpers assume the lock is held, which paths must NOT hold it) is
/// written into the types via these macros, and clang's `-Wthread-safety`
/// turns that into a compile-time proof over all paths — the Release-tidy CI
/// lane builds with `-Werror=thread-safety`, so a lock-discipline violation
/// is a build break, not a TSAN lottery ticket.  On GCC every macro expands
/// to nothing and the wrappers are zero-cost shells around the std types.
///
/// Usage pattern:
///
///   mutable Mutex m_;
///   int value_ GUARDED_BY(m_);              // only touched under m_
///   void bump_locked() REQUIRES(m_);        // caller must hold m_
///   void bump() EXCLUDES(m_) {              // caller must NOT hold m_
///     MutexLock lock(m_);
///     bump_locked();
///   }
///
/// Condition-variable waits go through `MutexLock::native()` — the analysis
/// does not model the wait's release/reacquire, which is sound: the
/// capability is held on both sides of the call.  Wait predicates that read
/// guarded members must be written as explicit `while` loops around the
/// wait, NOT as lambda predicates: clang analyses a lambda body as a
/// separate function that holds no capabilities, so a predicate lambda
/// reading a GUARDED_BY member is (correctly) rejected.

#include <mutex>

#if defined(__clang__)
#define QROSS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QROSS_THREAD_ANNOTATION(x)  // GCC: annotations compile away
#endif

/// A type that is a lockable capability (mutex wrappers below).
#define CAPABILITY(x) QROSS_THREAD_ANNOTATION(capability(x))

/// An RAII type whose lifetime holds a capability (MutexLock below).
#define SCOPED_CAPABILITY QROSS_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be read or written while holding the capability.
#define GUARDED_BY(x) QROSS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded (the pointer itself is not).
#define PT_GUARDED_BY(x) QROSS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the capability.
#define REQUIRES(...) \
  QROSS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define ACQUIRE(...) QROSS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define RELEASE(...) QROSS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when returning `value`.
#define TRY_ACQUIRE(value, ...) \
  QROSS_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))

/// Function that must be called WITHOUT holding the capability — the
/// annotation that turns "journal append happens outside the service lock"
/// and "notify hooks never run under the reactor mutex" into checked facts.
#define EXCLUDES(...) QROSS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define RETURN_CAPABILITY(x) QROSS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for the rare pattern the analysis cannot express (e.g. a
/// load-time lambda running before the object is shared).  Every use site
/// carries a comment justifying why it is safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  QROSS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace qross {

/// `std::mutex` annotated as a capability.  Drop-in: same lock/unlock
/// surface, plus `native()` for APIs that demand the raw std type.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for interop the analysis does not model.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock over `Mutex`, annotated as a scoped capability.  Re-lockable
/// (`unlock()`/`lock()`) for leader/follower hand-offs, and `native()`
/// exposes the underlying `std::unique_lock` for condition-variable waits.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : lock_(m.native()) {}
  ~MutexLock() RELEASE() = default;  // unique_lock no-ops if already unlocked

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }

  /// For `std::condition_variable::wait*` only.  Manual lock state changes
  /// through this handle would desynchronise the analysis — don't.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace qross
