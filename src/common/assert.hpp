#pragma once

// Contract-checking macros used across the QROSS libraries.
//
// QROSS_ASSERT checks internal invariants; violations indicate a programming
// error and abort with a diagnostic.  QROSS_REQUIRE validates caller-supplied
// preconditions at public API boundaries and throws std::invalid_argument so
// that misuse is recoverable and testable.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qross {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "QROSS_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace qross

#define QROSS_ASSERT(expr)                                      \
  do {                                                          \
    if (!(expr)) ::qross::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define QROSS_ASSERT_MSG(expr, msg)                                \
  do {                                                             \
    if (!(expr)) ::qross::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define QROSS_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr))                                                          \
      throw std::invalid_argument(std::string("QROSS precondition: ") +   \
                                  (msg) + " [" #expr "]");                \
  } while (false)
