#pragma once

// Deterministic random number generation for QROSS.
//
// Every stochastic component in the library (solvers, generators, trainers,
// tuners) takes an explicit 64-bit seed and derives its randomness from the
// generators below.  This makes every experiment in bench/ reproducible
// bit-for-bit on a given platform.
//
// Rng is xoshiro256** (Blackman & Vigna), seeded via splitmix64 so that
// low-entropy seeds (0, 1, 2, ...) still produce well-distributed streams.

#include <array>
#include <cstdint>
#include <vector>

namespace qross {

/// splitmix64 step; used for seeding and for deriving child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derives a child seed from a parent seed and a stream index.  Used to give
/// each replica / worker an independent, reproducible stream.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream);

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qross
