#pragma once

// Deterministic 64-bit stream hasher (FNV-1a over bytes with a splitmix64
// finaliser).  Used to fingerprint QUBO models, solver configurations and
// solve options for the result cache — NOT a cryptographic hash, and not
// stable across platforms with different double representations (all
// supported targets are IEEE-754 little-endian).
//
// Doubles are mixed via their bit pattern (std::bit_cast), so fingerprints
// distinguish values that compare equal but are distinct bit patterns only
// for the -0.0/0.0 pair; callers that canonicalise zeros (the sparse model
// scan skips structural zeros) are unaffected.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qross {

class Hash64 {
 public:
  /// `salt` decorrelates independent lanes hashing the same stream (the
  /// 128-bit fingerprint runs two lanes with different salts).
  explicit constexpr Hash64(std::uint64_t salt = 0)
      : state_(kOffsetBasis ^ (salt * 0x9e3779b97f4a7c15ULL)) {}

  constexpr Hash64& mix(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      state_ ^= (value >> shift) & 0xffULL;
      state_ *= kPrime;
    }
    return *this;
  }

  Hash64& mix(double value) {
    return mix(std::bit_cast<std::uint64_t>(value));
  }

  constexpr Hash64& mix(std::string_view text) {
    mix(static_cast<std::uint64_t>(text.size()));
    for (const char c : text) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= kPrime;
    }
    return *this;
  }

  /// Final avalanche so that short streams still spread over all bits.
  constexpr std::uint64_t digest() const {
    std::uint64_t z = state_;
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  std::uint64_t state_;
};

}  // namespace qross
