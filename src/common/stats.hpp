#pragma once

// Streaming and batch statistics used throughout QROSS: solver batches are
// summarised into (mean, stddev, min, ...) before being fed to the surrogate.

#include <cstddef>
#include <span>
#include <vector>

namespace qross {

/// Welford online mean/variance accumulator.  Numerically stable and usable
/// as a single-pass reducer over solver batches.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Population variance (divides by n).  Zero for n < 2.
  double variance() const;
  /// Sample variance (divides by n-1).  Zero for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample, computed in one pass.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population stddev
  double min = 0.0;
  double max = 0.0;
};

SampleSummary summarize(std::span<const double> values);

/// Linearly-interpolated quantile of an unsorted sample, q in [0, 1].
double quantile(std::span<const double> values, double q);

/// Several quantiles at once (single sort).
std::vector<double> quantiles(std::span<const double> values,
                              std::span<const double> qs);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Population standard deviation; 0 for fewer than 2 values.
double stddev(std::span<const double> values);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace qross
