#pragma once

// Minimal CSV table builder for the benchmark harness.  Each bench binary
// prints the rows/series of the paper table or figure it regenerates; this
// type keeps column alignment and escaping in one place.

#include <iosfwd>
#include <string>
#include <vector>

namespace qross {

class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  std::size_t num_columns() const { return header_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Adds a row of already-formatted cells.  Must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 6);

  /// Writes RFC-4180-style CSV (quotes cells containing , " or newline).
  void write_csv(std::ostream& os) const;

  /// Writes a human-readable aligned table (for terminal output).
  void write_pretty(std::ostream& os) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string format_double(double value, int precision = 6);

}  // namespace qross
