#pragma once

// Open-loop replayer: fires a Schedule's submissions at their scheduled
// times over net::Client connections — one connection (and one thread) per
// client spec, identified to the server by its client_id — REGARDLESS of
// what has completed.  A closed-loop driver waits for results and so can
// never overload the server; firing on the clock instead means queueing
// delay, shed and deadline expiry under overload are honestly measured.
//
// Outcome taxonomy (one per scheduled job):
//   ok       server completed the job (status done; cache_hit recorded)
//   shed     server refused admission — quota, server-full, or draining.
//            The replayer NEVER resubmits a refusal: a shed job is the
//            measurement, not an error to hide.
//   expired  server completed it as deadline-expired
//   failed   solver-side failure (or a non-admission refusal)
//   lost     never resolved: submit/connection failure or still
//            outstanding when the post-replay drain timeout ran out
//
// Latency is submit→result wall time observed client-side.  The replay
// thread alternates short poll() slices with due submissions, stamping
// completions immediately after each poll returns, so timestamp skew is
// bounded by one frame-decode, not by the schedule.

#include <cstdint>
#include <string>
#include <vector>

#include "load/workload.hpp"
#include "net/socket.hpp"

namespace qross::load {

enum class Outcome : std::uint8_t { ok, shed, expired, failed, lost };

const char* to_string(Outcome outcome);

/// What happened to one scheduled job (parallel to Schedule::jobs).
struct JobRecord {
  Outcome outcome = Outcome::lost;
  bool cache_hit = false;
  double scheduled_sec = 0.0;   ///< from the schedule
  double submitted_sec = -1.0;  ///< actual submit time on the replay clock
  double completed_sec = -1.0;  ///< when the terminal frame/refusal arrived

  bool resolved() const { return completed_sec >= 0.0; }
  double latency_ms() const {
    return resolved() && submitted_sec >= 0.0
               ? (completed_sec - submitted_sec) * 1e3
               : 0.0;
  }
};

struct ReplayConfig {
  net::Endpoint server;
  /// Solve request shared by every job (the model varies per the schedule).
  std::string solver = "da";
  std::uint32_t num_replicas = 2;
  std::uint32_t num_sweeps = 10;
  std::uint64_t solve_seed = 1;
  int connect_timeout_ms = 5000;
  /// How long to keep pumping for stragglers after the last arrival before
  /// declaring the remainder lost.
  double drain_timeout_sec = 30.0;
};

struct ReplayResult {
  std::vector<JobRecord> records;  ///< parallel to Schedule::jobs
  double wall_sec = 0.0;           ///< clock zero → last resolution
  /// First connection-level failure, if any ("" = every client connected
  /// and replayed its slice; individual jobs may still be shed/lost).
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Replays the schedule against a live server.  Blocks for roughly
/// duration_sec plus the straggler drain.  Thread-safe against nothing —
/// call from one thread; it spawns and joins its own per-client threads.
ReplayResult replay(const Schedule& schedule, const ReplayConfig& config);

}  // namespace qross::load
