#include "load/replayer.hpp"

#include <algorithm>
#include <chrono>
#include <latch>
#include <map>
#include <thread>

#include "common/thread_annotations.hpp"
#include "net/client.hpp"

namespace qross::load {
namespace {

using Clock = std::chrono::steady_clock;

/// Poll granularity while waiting for the next arrival: poll() returns the
/// moment data lands, so this bounds only the arrival-check cadence.
constexpr int kPollSliceMs = 5;
/// Poll granularity during the post-replay straggler drain.
constexpr int kDrainSliceMs = 20;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool is_admission_refusal(std::uint32_t code) {
  // Quota, server-full, and draining are the server *shedding load* — the
  // behaviour this harness exists to measure.  Everything else (bad
  // request, unknown solver) is a failure of the request itself.
  return code == net::kErrQuotaExceeded || code == net::kErrServerFull ||
         code == net::kErrDraining;
}

}  // namespace

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::ok: return "ok";
    case Outcome::shed: return "shed";
    case Outcome::expired: return "expired";
    case Outcome::failed: return "failed";
    case Outcome::lost: return "lost";
  }
  return "?";
}

ReplayResult replay(const Schedule& schedule, const ReplayConfig& config) {
  const auto& clients = schedule.config.clients;
  ReplayResult result;
  result.records.assign(schedule.jobs.size(), JobRecord{});
  for (std::size_t i = 0; i < schedule.jobs.size(); ++i) {
    result.records[i].scheduled_sec = schedule.jobs[i].arrival_sec;
  }

  // Per-client slices (already in arrival order — the schedule is sorted).
  std::vector<std::vector<std::size_t>> slices(clients.size());
  for (std::size_t i = 0; i < schedule.jobs.size(); ++i) {
    slices[schedule.jobs[i].client].push_back(i);
  }

  // Threads connect and pre-materialize their submissions first; the replay
  // clock's zero is captured only once every connection is up, so setup
  // cost never skews the schedule.
  std::latch ready(static_cast<std::ptrdiff_t>(clients.size()));
  std::latch go(1);
  Clock::time_point start{};
  // Function-local, captured by the worker lambdas; annotations cannot
  // express a guard relationship for the local `result.error` it protects,
  // but the annotated type still feeds the lock sites into the analysis.
  Mutex error_mutex;

  auto worker = [&](std::uint32_t client_index) {
    const auto& my_jobs = slices[client_index];

    net::ClientConfig client_config;
    client_config.server = config.server;
    client_config.client_id = clients[client_index].client_id;
    client_config.connect_timeout_ms = config.connect_timeout_ms;
    // Open-loop: a refusal or a dead server is a measurement, not a thing
    // to smooth over with redials and backoff sleeps that would stall the
    // schedule.
    client_config.reconnect_attempts = 1;
    client_config.reconnect_backoff_ms = 0;
    net::Client client(client_config);

    std::vector<net::RemoteJob> submissions;
    submissions.reserve(my_jobs.size());
    for (const auto index : my_jobs) {
      const auto& scheduled = schedule.jobs[index];
      net::RemoteJob job;
      job.solver = config.solver;
      job.model = materialize_model(schedule.config, scheduled);
      job.num_replicas = config.num_replicas;
      job.num_sweeps = config.num_sweeps;
      job.seed = config.solve_seed;
      job.priority = scheduled.priority;
      job.deadline_ms = scheduled.deadline_ms;
      submissions.push_back(std::move(job));
    }

    std::string error;
    const bool connected = client.connect(&error);
    if (!connected) {
      const MutexLock lock(error_mutex);
      if (result.error.empty()) {
        result.error = "client '" + clients[client_index].client_id +
                       "' connect failed: " + error;
      }
    }
    ready.count_down();
    go.wait();
    if (!connected) return;  // this slice's jobs stay lost

    std::map<std::uint64_t, std::size_t> inflight;  // tag → job index

    const auto classify = [&](double at_sec) {
      // Errors BEFORE results: a permanent refusal both lands in the error
      // queue and synthesizes a failed ResultFrame — the error's code is
      // what distinguishes shed from failed, so it must win, and forget()
      // then drops the synthesized duplicate.
      for (const auto& err : client.take_errors()) {
        const auto it = inflight.find(err.tag);
        if (it == inflight.end()) continue;
        auto& record = result.records[it->second];
        record.outcome = is_admission_refusal(err.code) ? Outcome::shed
                                                        : Outcome::failed;
        record.completed_sec = at_sec;
        client.forget(err.tag);
        inflight.erase(it);
      }
      for (const auto& frame : client.take_ready_results()) {
        const auto it = inflight.find(frame.tag);
        if (it == inflight.end()) continue;
        auto& record = result.records[it->second];
        switch (frame.status) {
          case service::JobStatus::done:
            record.outcome = Outcome::ok;
            record.cache_hit = frame.cache_hit;
            break;
          case service::JobStatus::expired:
            record.outcome = Outcome::expired;
            break;
          default:
            record.outcome = Outcome::failed;
            break;
        }
        record.completed_sec = at_sec;
        inflight.erase(it);
      }
    };

    const auto fail_connection = [&](const std::string& why) {
      const MutexLock lock(error_mutex);
      if (result.error.empty()) {
        result.error = "client '" + clients[client_index].client_id +
                       "' connection failed mid-replay: " + why;
      }
    };

    bool dead = false;
    for (std::size_t k = 0; k < my_jobs.size() && !dead; ++k) {
      const auto index = my_jobs[k];
      const double due = schedule.jobs[index].arrival_sec;
      // Pump completions until this submission is due.  poll() wakes the
      // moment data arrives, so completions are stamped promptly even
      // while the schedule is idle.
      while (true) {
        const double gap_ms = (due - seconds_since(start)) * 1e3;
        if (gap_ms <= 0.0) break;
        const int slice = static_cast<int>(std::min(
            gap_ms, static_cast<double>(kPollSliceMs)));
        std::string poll_error;
        if (!client.poll(slice, &poll_error)) {
          fail_connection(poll_error);
          dead = true;
          break;
        }
        classify(seconds_since(start));
      }
      if (dead) break;
      auto submitted = client.submit_job(submissions[k]);
      const double now = seconds_since(start);
      result.records[index].submitted_sec = now;
      if (!submitted.ok()) {
        // submit_job already burned its one redial: the connection is gone.
        fail_connection(submitted.error().message);
        dead = true;
        break;
      }
      inflight.emplace(submitted.value(), index);
      classify(seconds_since(start));
    }

    // Straggler drain: the schedule is exhausted; give in-flight jobs a
    // bounded window to resolve.  Anything still outstanding stays lost.
    const double drain_deadline =
        schedule.config.duration_sec + config.drain_timeout_sec;
    while (!dead && !inflight.empty() &&
           seconds_since(start) < drain_deadline) {
      std::string poll_error;
      if (!client.poll(kDrainSliceMs, &poll_error)) {
        fail_connection(poll_error);
        break;
      }
      classify(seconds_since(start));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (std::uint32_t c = 0; c < clients.size(); ++c) {
    threads.emplace_back(worker, c);
  }
  ready.wait();
  start = Clock::now();
  go.count_down();
  for (auto& thread : threads) thread.join();

  for (const auto& record : result.records) {
    result.wall_sec = std::max(result.wall_sec, record.completed_sec);
    result.wall_sec = std::max(result.wall_sec, record.submitted_sec);
  }
  return result;
}

}  // namespace qross::load
