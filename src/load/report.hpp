#pragma once

// Aggregation of replay results into the numbers every consumer reads:
// outcome counts, shed rate, completed throughput, and latency quantiles
// (overall and per client).  Shared by `qross_cli load` (text table + JSON
// summary for scripts) and `bench_load` (BENCH_load.json rows).

#include <cstdio>
#include <string>
#include <vector>

#include "load/replayer.hpp"
#include "load/workload.hpp"

namespace qross::load {

struct OutcomeCounts {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t expired = 0;
  std::size_t failed = 0;
  std::size_t lost = 0;
  std::size_t cache_hits = 0;

  double shed_rate() const {
    return jobs > 0 ? static_cast<double>(shed) / static_cast<double>(jobs)
                    : 0.0;
  }
  double ok_ratio() const {
    return jobs > 0 ? static_cast<double>(ok) / static_cast<double>(jobs)
                    : 0.0;
  }
  double expired_rate() const {
    return jobs > 0 ? static_cast<double>(expired) / static_cast<double>(jobs)
                    : 0.0;
  }
};

/// Latency quantiles over OK jobs only — refusals resolve in microseconds
/// and would flatter the tail exactly when the server degrades.
struct LatencyQuantiles {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

struct ClientSummary {
  std::string client_id;
  OutcomeCounts counts;
  LatencyQuantiles latency;
};

struct LoadSummary {
  OutcomeCounts counts;
  LatencyQuantiles latency;
  double offered_per_sec = 0.0;    ///< scheduled arrivals / horizon
  double completed_per_sec = 0.0;  ///< ok jobs / replay wall time
  double wall_sec = 0.0;
  std::vector<ClientSummary> clients;  ///< parallel to the config's specs
};

LoadSummary summarize(const Schedule& schedule, const ReplayResult& result);

/// Human-readable table (the `qross_cli load` output).
void print_summary(std::FILE* out, const LoadSummary& summary);

/// One-object JSON ("qross-load-summary-v1") for scripting — loadsmoke
/// asserts on these fields.
void write_summary_json(std::FILE* out, const LoadSummary& summary);

}  // namespace qross::load
