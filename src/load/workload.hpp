#pragma once

// Deterministic open-loop workload generation.
//
// A Schedule is the full arrival plan for one load-replay run: WHEN each
// job arrives (Poisson or bursty on-off arrivals), WHO submits it (a
// weighted client mix with per-client priority and deadline distributions),
// and WHAT it asks for (a repeated "hot" model that the server's result
// cache will recognise, or a fresh fingerprint it has never seen —
// hit_ratio sets the split).
//
// Everything is sampled from qross::Rng streams derived from one seed, so a
// given (config, seed) pair reproduces the identical schedule bit-for-bit:
// same arrival times, same client assignment, same model seeds, same
// deadlines.  The replayer (replayer.hpp) fires this plan against a live
// server; the generator itself never touches the network.

#include <cstdint>
#include <string>
#include <vector>

#include "qubo/model.hpp"

namespace qross::load {

enum class ArrivalKind : std::uint8_t {
  poisson,  ///< exponential inter-arrivals at rate_per_sec
  bursty,   ///< exponential on/off phases; arrivals only during ON phases,
            ///< at a rate scaled so the LONG-RUN mean is still rate_per_sec
};

const char* to_string(ArrivalKind kind);
bool parse_arrival_kind(const std::string& text, ArrivalKind* out);

/// One traffic source in the mix.  `mix_weight` is its share of arrivals
/// (relative to the other specs); the server-side fair-share weight is a
/// separate knob (qrossd --client-weight) — a "greedy" profile is a large
/// mix_weight here, a "polite" one a small weight and/or a deadline.
struct ClientSpec {
  std::string client_id = "load";
  double mix_weight = 1.0;
  std::int32_t priority = 0;
  /// Mean relative deadline; 0 = jobs carry no deadline.
  std::uint32_t deadline_mean_ms = 0;
  /// Uniform jitter as a fraction of the mean: deadlines are sampled from
  /// [mean*(1-j), mean*(1+j)].  Ignored when deadline_mean_ms == 0.
  double deadline_jitter = 0.0;
};

struct WorkloadConfig {
  ArrivalKind arrivals = ArrivalKind::poisson;
  double rate_per_sec = 100.0;  ///< long-run mean arrival rate, all clients
  double duration_sec = 1.0;    ///< schedule horizon (open-loop offered load)
  /// Bursty shape: mean ON / OFF phase lengths (exponentially distributed).
  double burst_on_sec = 0.05;
  double burst_off_sec = 0.05;
  /// Fraction of jobs that reuse a hot model seed (equal fingerprints →
  /// server cache hits / coalescing); the rest get fresh seeds.
  double hit_ratio = 0.0;
  std::size_t hot_models = 4;  ///< size of the hot working set
  /// Model shape shared by every job (fingerprints differ only by seed).
  std::size_t model_vars = 32;
  double model_density = 0.08;
  /// Empty = one default client ("load", weight 1, no deadline).
  std::vector<ClientSpec> clients;
  std::uint64_t seed = 1;
};

struct ScheduledJob {
  double arrival_sec = 0.0;    ///< offset from the replay clock's zero
  std::uint32_t client = 0;    ///< index into WorkloadConfig::clients
  std::uint64_t model_seed = 0;
  bool hot = false;            ///< model_seed drawn from the hot set
  std::int32_t priority = 0;
  std::uint32_t deadline_ms = 0;  ///< relative; 0 = none
};

struct Schedule {
  WorkloadConfig config;           ///< normalised (clients never empty)
  std::vector<ScheduledJob> jobs;  ///< sorted by arrival_sec
};

/// Builds the full arrival plan.  Deterministic: equal configs (including
/// seed) produce bit-for-bit equal schedules.  Throws std::invalid_argument
/// on nonsensical knobs (rate/duration <= 0, hit_ratio outside [0,1],
/// non-positive mix weights, bursty phases <= 0).
Schedule generate_schedule(const WorkloadConfig& config);

/// The QUBO a scheduled job submits: an MVC instance generated from the
/// job's model_seed with the config's shape.  Hot jobs share seeds, so
/// their models — and thus their server-side fingerprints — are identical.
qubo::QuboModel materialize_model(const WorkloadConfig& config,
                                  const ScheduledJob& job);

}  // namespace qross::load
