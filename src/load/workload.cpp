#include "load/workload.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "problems/mvc/mvc.hpp"

namespace qross::load {
namespace {

// Independent child streams per sampling concern, so adding arrivals never
// perturbs the client mix or model draws for unrelated jobs.
constexpr std::uint64_t kArrivalStream = 0x41;
constexpr std::uint64_t kMixStream = 0x42;
constexpr std::uint64_t kModelStream = 0x43;
constexpr std::uint64_t kDeadlineStream = 0x44;
// Salts separating the hot-set seed space from fresh seeds.
constexpr std::uint64_t kHotSalt = 0x686f74;      // "hot"
constexpr std::uint64_t kFreshSalt = 0x6672657368;  // "fresh"

std::vector<double> poisson_arrivals(Rng& rng, double rate, double horizon) {
  std::vector<double> times;
  for (double t = rng.exponential(rate); t < horizon;
       t += rng.exponential(rate)) {
    times.push_back(t);
  }
  return times;
}

std::vector<double> bursty_arrivals(Rng& rng, double rate, double horizon,
                                    double on_mean, double off_mean) {
  // Arrivals only during ON phases, at a rate inflated by the duty cycle so
  // the long-run mean over ON+OFF still equals `rate`.
  const double burst_rate = rate * (on_mean + off_mean) / on_mean;
  std::vector<double> times;
  double phase_start = 0.0;
  bool on = true;
  while (phase_start < horizon) {
    const double phase_len =
        rng.exponential(1.0 / (on ? on_mean : off_mean));
    const double phase_end = phase_start + phase_len;
    if (on) {
      for (double t = phase_start + rng.exponential(burst_rate);
           t < phase_end && t < horizon; t += rng.exponential(burst_rate)) {
        times.push_back(t);
      }
    }
    phase_start = phase_end;
    on = !on;
  }
  return times;
}

void validate(const WorkloadConfig& config) {
  if (config.rate_per_sec <= 0.0) {
    throw std::invalid_argument("load: rate_per_sec must be > 0");
  }
  if (config.duration_sec <= 0.0) {
    throw std::invalid_argument("load: duration_sec must be > 0");
  }
  if (config.hit_ratio < 0.0 || config.hit_ratio > 1.0) {
    throw std::invalid_argument("load: hit_ratio must be in [0, 1]");
  }
  if (config.hit_ratio > 0.0 && config.hot_models == 0) {
    throw std::invalid_argument("load: hit_ratio > 0 needs hot_models > 0");
  }
  if (config.arrivals == ArrivalKind::bursty &&
      (config.burst_on_sec <= 0.0 || config.burst_off_sec <= 0.0)) {
    throw std::invalid_argument("load: bursty phases must be > 0");
  }
  if (config.model_vars == 0) {
    throw std::invalid_argument("load: model_vars must be > 0");
  }
  for (const auto& spec : config.clients) {
    if (spec.mix_weight <= 0.0) {
      throw std::invalid_argument("load: client mix_weight must be > 0");
    }
    if (spec.deadline_jitter < 0.0 || spec.deadline_jitter > 1.0) {
      throw std::invalid_argument("load: deadline_jitter must be in [0, 1]");
    }
  }
}

}  // namespace

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::poisson: return "poisson";
    case ArrivalKind::bursty: return "bursty";
  }
  return "?";
}

bool parse_arrival_kind(const std::string& text, ArrivalKind* out) {
  if (text == "poisson") {
    *out = ArrivalKind::poisson;
    return true;
  }
  if (text == "bursty") {
    *out = ArrivalKind::bursty;
    return true;
  }
  return false;
}

Schedule generate_schedule(const WorkloadConfig& config) {
  validate(config);
  Schedule schedule;
  schedule.config = config;
  if (schedule.config.clients.empty()) {
    schedule.config.clients.push_back(ClientSpec{});
  }
  const auto& clients = schedule.config.clients;

  Rng arrival_rng(derive_seed(config.seed, kArrivalStream));
  Rng mix_rng(derive_seed(config.seed, kMixStream));
  Rng model_rng(derive_seed(config.seed, kModelStream));
  Rng deadline_rng(derive_seed(config.seed, kDeadlineStream));

  const auto times =
      config.arrivals == ArrivalKind::poisson
          ? poisson_arrivals(arrival_rng, config.rate_per_sec,
                             config.duration_sec)
          : bursty_arrivals(arrival_rng, config.rate_per_sec,
                            config.duration_sec, config.burst_on_sec,
                            config.burst_off_sec);

  double total_weight = 0.0;
  for (const auto& spec : clients) total_weight += spec.mix_weight;

  schedule.jobs.reserve(times.size());
  std::uint64_t fresh_counter = 0;
  for (const double t : times) {
    ScheduledJob job;
    job.arrival_sec = t;
    // Weighted client pick: walk the cumulative mix.
    double pick = mix_rng.uniform() * total_weight;
    std::uint32_t index = 0;
    for (; index + 1 < clients.size(); ++index) {
      pick -= clients[index].mix_weight;
      if (pick < 0.0) break;
    }
    job.client = index;
    const auto& spec = clients[index];
    job.priority = spec.priority;
    job.hot = config.hit_ratio > 0.0 && model_rng.bernoulli(config.hit_ratio);
    job.model_seed =
        job.hot
            ? derive_seed(config.seed ^ kHotSalt,
                          model_rng.uniform_int(
                              static_cast<std::uint64_t>(config.hot_models)))
            : derive_seed(config.seed ^ kFreshSalt, fresh_counter++);
    if (spec.deadline_mean_ms > 0) {
      const double mean = static_cast<double>(spec.deadline_mean_ms);
      const double lo = mean * (1.0 - spec.deadline_jitter);
      const double hi = mean * (1.0 + spec.deadline_jitter);
      const double drawn =
          spec.deadline_jitter > 0.0 ? deadline_rng.uniform(lo, hi) : mean;
      job.deadline_ms = drawn < 1.0 ? 1u : static_cast<std::uint32_t>(drawn);
    }
    schedule.jobs.push_back(job);
  }
  return schedule;
}

qubo::QuboModel materialize_model(const WorkloadConfig& config,
                                  const ScheduledJob& job) {
  return mvc::generate_random_mvc(config.model_vars, config.model_density,
                                  job.model_seed)
      .to_qubo(2.0);
}

}  // namespace qross::load
