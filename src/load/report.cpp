#include "load/report.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace qross::load {
namespace {

void count_record(OutcomeCounts* counts, const JobRecord& record) {
  ++counts->jobs;
  switch (record.outcome) {
    case Outcome::ok:
      ++counts->ok;
      if (record.cache_hit) ++counts->cache_hits;
      break;
    case Outcome::shed: ++counts->shed; break;
    case Outcome::expired: ++counts->expired; break;
    case Outcome::failed: ++counts->failed; break;
    case Outcome::lost: ++counts->lost; break;
  }
}

LatencyQuantiles latency_quantiles(std::vector<double>* latencies) {
  LatencyQuantiles q;
  if (latencies->empty()) return q;
  q.p50_ms = quantile(*latencies, 0.50);
  q.p95_ms = quantile(*latencies, 0.95);
  q.p99_ms = quantile(*latencies, 0.99);
  return q;
}

}  // namespace

LoadSummary summarize(const Schedule& schedule, const ReplayResult& result) {
  LoadSummary summary;
  summary.wall_sec = result.wall_sec;
  const auto& clients = schedule.config.clients;
  summary.clients.resize(clients.size());
  std::vector<std::vector<double>> client_latencies(clients.size());
  std::vector<double> all_latencies;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    summary.clients[i].client_id = clients[i].client_id;
  }
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& record = result.records[i];
    const auto client = schedule.jobs[i].client;
    count_record(&summary.counts, record);
    count_record(&summary.clients[client].counts, record);
    if (record.outcome == Outcome::ok) {
      all_latencies.push_back(record.latency_ms());
      client_latencies[client].push_back(record.latency_ms());
    }
  }
  summary.latency = latency_quantiles(&all_latencies);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    summary.clients[i].latency = latency_quantiles(&client_latencies[i]);
  }
  summary.offered_per_sec =
      static_cast<double>(summary.counts.jobs) / schedule.config.duration_sec;
  summary.completed_per_sec =
      summary.wall_sec > 0.0
          ? static_cast<double>(summary.counts.ok) / summary.wall_sec
          : 0.0;
  return summary;
}

void print_summary(std::FILE* out, const LoadSummary& summary) {
  const auto& c = summary.counts;
  std::fprintf(out,
               "offered %.1f jobs/s (%zu jobs), completed %.1f jobs/s over "
               "%.2f s\n",
               summary.offered_per_sec, c.jobs, summary.completed_per_sec,
               summary.wall_sec);
  std::fprintf(out,
               "outcomes: ok %zu  shed %zu  expired %zu  failed %zu  lost "
               "%zu  (shed rate %.1f%%, cache hits %zu)\n",
               c.ok, c.shed, c.expired, c.failed, c.lost,
               100.0 * c.shed_rate(), c.cache_hits);
  std::fprintf(out, "latency ms (ok jobs): p50 %.2f  p95 %.2f  p99 %.2f\n",
               summary.latency.p50_ms, summary.latency.p95_ms,
               summary.latency.p99_ms);
  std::fprintf(out,
               "%-12s %6s %6s %6s %8s %7s %6s %9s %9s %9s\n", "client",
               "jobs", "ok", "shed", "expired", "failed", "lost", "p50_ms",
               "p95_ms", "p99_ms");
  for (const auto& client : summary.clients) {
    const auto& k = client.counts;
    std::fprintf(out,
                 "%-12s %6zu %6zu %6zu %8zu %7zu %6zu %9.2f %9.2f %9.2f\n",
                 client.client_id.c_str(), k.jobs, k.ok, k.shed, k.expired,
                 k.failed, k.lost, client.latency.p50_ms,
                 client.latency.p95_ms, client.latency.p99_ms);
  }
}

void write_summary_json(std::FILE* out, const LoadSummary& summary) {
  const auto& c = summary.counts;
  std::fprintf(out, "{\n  \"schema\": \"qross-load-summary-v1\",\n");
  std::fprintf(out, "  \"jobs\": %zu,\n", c.jobs);
  std::fprintf(out, "  \"ok\": %zu,\n", c.ok);
  std::fprintf(out, "  \"shed\": %zu,\n", c.shed);
  std::fprintf(out, "  \"expired\": %zu,\n", c.expired);
  std::fprintf(out, "  \"failed\": %zu,\n", c.failed);
  std::fprintf(out, "  \"lost\": %zu,\n", c.lost);
  std::fprintf(out, "  \"cache_hits\": %zu,\n", c.cache_hits);
  std::fprintf(out, "  \"shed_rate\": %.6f,\n", c.shed_rate());
  std::fprintf(out, "  \"ok_ratio\": %.6f,\n", c.ok_ratio());
  std::fprintf(out, "  \"offered_per_sec\": %.3f,\n", summary.offered_per_sec);
  std::fprintf(out, "  \"completed_per_sec\": %.3f,\n",
               summary.completed_per_sec);
  std::fprintf(out, "  \"wall_sec\": %.3f,\n", summary.wall_sec);
  std::fprintf(out, "  \"p50_ms\": %.3f,\n", summary.latency.p50_ms);
  std::fprintf(out, "  \"p95_ms\": %.3f,\n", summary.latency.p95_ms);
  std::fprintf(out, "  \"p99_ms\": %.3f,\n", summary.latency.p99_ms);
  std::fprintf(out, "  \"clients\": [\n");
  for (std::size_t i = 0; i < summary.clients.size(); ++i) {
    const auto& client = summary.clients[i];
    const auto& k = client.counts;
    std::fprintf(out,
                 "    {\"id\": \"%s\", \"jobs\": %zu, \"ok\": %zu, "
                 "\"shed\": %zu, \"expired\": %zu, \"failed\": %zu, "
                 "\"lost\": %zu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                 "\"p99_ms\": %.3f}%s\n",
                 client.client_id.c_str(), k.jobs, k.ok, k.shed, k.expired,
                 k.failed, k.lost, client.latency.p50_ms,
                 client.latency.p95_ms, client.latency.p99_ms,
                 i + 1 < summary.clients.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace qross::load
