#include "qubo/sparse.hpp"

#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace qross::qubo {

SparseAdjacency::SparseAdjacency(const QuboModel& model)
    : n_(model.num_vars()),
      offset_(model.offset()),
      row_ptr_(n_ + 1, 0),
      diag_(n_, 0.0) {
  QROSS_REQUIRE(n_ < std::numeric_limits<std::uint32_t>::max(),
                "model too large for 32-bit adjacency indices");
  // Scan the dense upper-triangular storage directly rather than going
  // through coefficient(), which pays a bounds check and canonicalisation
  // swap per entry — this build runs once per solve call.
  const std::span<const double> q = model.raw();
  // Pass 1: degrees and scalar summaries.
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = q.data() + i * n_;
    diag_[i] = row[i];
    if (diag_[i] != 0.0) ++num_nonzeros_;
    max_abs_coefficient_ = std::max(max_abs_coefficient_, std::abs(diag_[i]));
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double w = row[j];
      if (w == 0.0) continue;
      ++num_nonzeros_;
      max_abs_coefficient_ = std::max(max_abs_coefficient_, std::abs(w));
      ++row_ptr_[i + 1];
      ++row_ptr_[j + 1];
    }
  }
  for (std::size_t i = 0; i < n_; ++i) row_ptr_[i + 1] += row_ptr_[i];
  cols_.resize(row_ptr_[n_]);
  weights_.resize(row_ptr_[n_]);
  // Pass 2: fill rows.  Scanning (i, j) with i < j in ascending order keeps
  // every row's columns sorted ascending without a later sort.
  std::vector<std::size_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = q.data() + i * n_;
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double w = row[j];
      if (w == 0.0) continue;
      cols_[cursor[i]] = static_cast<std::uint32_t>(j);
      weights_[cursor[i]++] = w;
      cols_[cursor[j]] = static_cast<std::uint32_t>(i);
      weights_[cursor[j]++] = w;
    }
  }
}

double SparseAdjacency::density() const {
  const double upper = static_cast<double>(n_) * static_cast<double>(n_ + 1) / 2.0;
  return upper > 0.0 ? static_cast<double>(num_nonzeros_) / upper : 0.0;
}

double SparseAdjacency::energy(std::span<const std::uint8_t> x) const {
  QROSS_REQUIRE(x.size() == n_, "assignment size mismatch");
  double e = offset_;
  for (std::size_t i = 0; i < n_; ++i) {
    if (x[i] == 0) continue;
    e += diag_[i];
    const std::size_t begin = row_ptr_[i];
    const std::size_t end = row_ptr_[i + 1];
    for (std::size_t k = begin; k < end; ++k) {
      const std::uint32_t j = cols_[k];
      // Count each pair once, from its lower endpoint, in ascending-j order
      // so the accumulation matches QuboModel::energy exactly.
      if (j > i && x[j] != 0) e += weights_[k];
    }
  }
  return e;
}

double SparseAdjacency::flip_delta(std::span<const std::uint8_t> x,
                                   std::size_t i) const {
  QROSS_REQUIRE(x.size() == n_, "assignment size mismatch");
  QROSS_REQUIRE(i < n_, "flip index out of range");
  double field = diag_[i];
  const std::size_t begin = row_ptr_[i];
  const std::size_t end = row_ptr_[i + 1];
  for (std::size_t k = begin; k < end; ++k) {
    if (x[cols_[k]] != 0) field += weights_[k];
  }
  return x[i] == 0 ? field : -field;
}

}  // namespace qross::qubo
