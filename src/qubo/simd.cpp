#include "qubo/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace qross::qubo {

namespace {

SimdKind clamp_to_cpu(SimdKind kind) {
  return kind == SimdKind::kAvx2 && !cpu_supports_avx2() ? SimdKind::kScalar
                                                         : kind;
}

SimdKind resolve_startup_kind() {
  const char* env = std::getenv("QROSS_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return SimdKind::kScalar;
    if (std::strcmp(env, "avx2") == 0) return clamp_to_cpu(SimdKind::kAvx2);
    // "auto" and anything unrecognised fall through to detection — an
    // operator typo must not silently disable the fast path.
  }
  return cpu_supports_avx2() ? SimdKind::kAvx2 : SimdKind::kScalar;
}

std::atomic<SimdKind>& active_kind_slot() {
  static std::atomic<SimdKind> kind{resolve_startup_kind()};
  return kind;
}

}  // namespace

const char* to_string(SimdKind kind) {
  return kind == SimdKind::kAvx2 ? "avx2" : "scalar";
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdKind active_simd_kind() {
  return active_kind_slot().load(std::memory_order_relaxed);
}

SimdKind set_simd_kind(SimdKind kind) {
  const SimdKind installed = clamp_to_cpu(kind);
  active_kind_slot().store(installed, std::memory_order_relaxed);
  return installed;
}

}  // namespace qross::qubo
