#include "qubo/replica_block.hpp"

#include <bit>

#include "common/assert.hpp"

namespace qross::qubo {

namespace detail {
namespace {

// ---------------------------------------------------------------------------
// Scalar arm.  This is both the portable fallback and the bit-for-bit
// reference the AVX2 arm is tested against: every arithmetic step below has
// an exact vector counterpart (negate == sign-bit XOR, masked skip ==
// blendv), so keep the two files in lockstep when changing either.

void scalar_compute_flip_deltas(const double* fields_row,
                                const std::uint64_t* state_row,
                                std::size_t stride, double* out) {
  for (std::size_t l = 0; l < stride; ++l) {
    const bool set = (state_row[l / 64] >> (l % 64)) & 1u;
    out[l] = set ? -fields_row[l] : fields_row[l];
  }
}

void scalar_apply_flips(const SparseAdjacency& adj, std::size_t i,
                        const BlockArrays& arrays, const std::uint64_t* accept,
                        const double* deltas, const BlockScratch& scratch) {
  std::uint64_t* state_row = arrays.state + i * arrays.words;
  // Per accepted lane: energy commit, bit flip, and the ±1 field-update
  // sign (old x == 0 means the flip turns the bit ON, so neighbours gain
  // +w — the exact order and sign rule of IncrementalEvaluator::apply_flip).
  for (std::size_t w = 0; w < arrays.words; ++w) {
    std::uint64_t bits = accept[w];
    while (bits != 0) {
      const std::size_t l = w * 64 + std::countr_zero(bits);
      bits &= bits - 1;
      arrays.energies[l] += deltas[l];
      const std::uint64_t bit = std::uint64_t{1} << (l % 64);
      scratch.lane_sign[l] = (state_row[w] & bit) != 0 ? -1.0 : 1.0;
      state_row[w] ^= bit;
    }
  }
  const auto neighbors = adj.neighbors(i);
  const auto weights = adj.weights(i);
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    double* row = arrays.fields + neighbors[k] * arrays.stride;
    const double weight = weights[k];
    for (std::size_t w = 0; w < arrays.words; ++w) {
      std::uint64_t bits = accept[w];
      while (bits != 0) {
        const std::size_t l = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        row[l] += scratch.lane_sign[l] * weight;
      }
    }
  }
}

constexpr BlockKernel kScalarKernel{scalar_compute_flip_deltas,
                                    scalar_apply_flips};

}  // namespace

const BlockKernel& scalar_block_kernel() { return kScalarKernel; }

}  // namespace detail

ReplicaBlockEvaluator::ReplicaBlockEvaluator(SparseAdjacencyPtr adjacency,
                                             std::size_t lanes, SimdKind kind)
    : adjacency_(std::move(adjacency)),
      n_(adjacency_ ? adjacency_->num_vars() : 0),
      lanes_(lanes),
      stride_((lanes + kGroupLanes - 1) / kGroupLanes * kGroupLanes),
      words_((stride_ + 63) / 64),
      kind_(kind == SimdKind::kAvx2 && detail::avx2_block_kernel() != nullptr &&
                    cpu_supports_avx2()
                ? SimdKind::kAvx2
                : SimdKind::kScalar),
      kernel_(kind_ == SimdKind::kAvx2 ? detail::avx2_block_kernel()
                                       : &detail::scalar_block_kernel()),
      fields_(n_ * stride_, 0.0),
      state_(n_ * words_, 0),
      energies_(stride_, 0.0),
      lane_mask_(stride_, 0.0),
      lane_sign_(stride_, 0.0) {
  QROSS_REQUIRE(adjacency_ != nullptr, "adjacency required");
  QROSS_REQUIRE(lanes_ >= 1, "at least one lane");
  // All lanes start at the all-zeros assignment, like a fresh
  // IncrementalEvaluator: fields reduce to the diagonals, energy to offset.
  for (std::size_t i = 0; i < n_; ++i) {
    const double diag = adjacency_->diagonal(i);
    double* row = fields_.data() + i * stride_;
    for (std::size_t l = 0; l < lanes_; ++l) row[l] = diag;
  }
  for (std::size_t l = 0; l < lanes_; ++l) energies_[l] = adjacency_->offset();
}

void ReplicaBlockEvaluator::set_state(std::size_t lane,
                                      std::span<const std::uint8_t> x) {
  QROSS_REQUIRE(lane < lanes_, "lane out of range");
  QROSS_REQUIRE(x.size() == n_, "state size mismatch");
  const SparseAdjacency& adj = *adjacency_;
  const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
  const std::size_t word = lane / 64;
  // Mirrors IncrementalEvaluator::set_state term for term so the lane's
  // field and energy values are bitwise those of a scalar evaluator.
  double energy = adj.offset();
  for (std::size_t i = 0; i < n_; ++i) {
    const auto neighbors = adj.neighbors(i);
    const auto weights = adj.weights(i);
    double field = adj.diagonal(i);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (x[neighbors[k]] != 0) field += weights[k];
    }
    fields_[i * stride_ + lane] = field;
    std::uint64_t& state_word = state_[i * words_ + word];
    state_word = x[i] != 0 ? (state_word | bit) : (state_word & ~bit);
    if (x[i] != 0) {
      energy += adj.diagonal(i);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        const std::uint32_t j = neighbors[k];
        if (j > i && x[j] != 0) energy += weights[k];
      }
    }
  }
  energies_[lane] = energy;
}

void ReplicaBlockEvaluator::extract_state(std::size_t lane, Bits& out) const {
  out.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) out[i] = bit(lane, i) ? 1 : 0;
}

void ReplicaBlockEvaluator::apply_flip_lane(std::size_t lane, std::size_t i) {
  QROSS_ASSERT(lane < lanes_ && i < n_);
  energies_[lane] += flip_delta(lane, i);
  std::uint64_t& word = state_[i * words_ + lane / 64];
  const std::uint64_t bit = std::uint64_t{1} << (lane % 64);
  const double sign = (word & bit) != 0 ? -1.0 : 1.0;
  word ^= bit;
  const auto neighbors = adjacency_->neighbors(i);
  const auto weights = adjacency_->weights(i);
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    fields_[neighbors[k] * stride_ + lane] += sign * weights[k];
  }
}

}  // namespace qross::qubo
