#pragma once

// Incremental single-flip evaluation for local-search QUBO solvers.
//
// Maintains, for the current assignment x, the local field
//
//   L_i = q(i,i) + sum_{j != i} w(i,j) x_j        (w = symmetrised weight)
//
// so that the energy delta of flipping bit i is
//
//   delta_i = (1 - 2 x_i) * L_i                    — an O(1) read.
//
// The weights live in a shared immutable SparseAdjacency: applying a flip
// updates only the deg(i) neighbouring fields, and set_state costs
// O(n + nnz).  Every replica / chain / worker thread holds its own
// evaluator (state vector + fields, O(n) each) over the *same* adjacency,
// so a batch of B replicas costs O(nnz + B·n) memory instead of the dense
// O(B·n^2).  This is the inner loop of all solver kernels, so it avoids
// virtual dispatch and bounds checks in release builds.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "qubo/model.hpp"
#include "qubo/sparse.hpp"

namespace qross::qubo {

class IncrementalEvaluator {
 public:
  /// Convenience constructor building a private adjacency from `model`.
  /// Call sites evaluating from several replicas should build the adjacency
  /// once with SparseAdjacency::build and share it instead.
  explicit IncrementalEvaluator(const QuboModel& model)
      : IncrementalEvaluator(SparseAdjacency::build(model)) {}

  /// Shares `adjacency`; the evaluator only allocates per-state storage.
  explicit IncrementalEvaluator(SparseAdjacencyPtr adjacency);

  std::size_t num_vars() const { return n_; }

  /// The shared adjacency this evaluator runs on.
  const SparseAdjacencyPtr& adjacency() const { return adjacency_; }

  /// Resets the tracked state to x (O(n + nnz)).
  void set_state(std::span<const std::uint8_t> x);

  const Bits& state() const { return x_; }
  double energy() const { return energy_; }

  /// Energy delta of flipping bit i (O(1)).
  double flip_delta(std::size_t i) const {
    return x_[i] == 0 ? fields_[i] : -fields_[i];
  }

  /// Applies the flip of bit i, updating energy and the deg(i) affected
  /// local fields (O(deg(i))).
  void apply_flip(std::size_t i);

  /// Convenience: delta then apply.
  double flip(std::size_t i) {
    const double d = flip_delta(i);
    apply_flip(i);
    return d;
  }

 private:
  SparseAdjacencyPtr adjacency_;
  std::size_t n_;
  Bits x_;
  std::vector<double> fields_;
  double energy_ = 0.0;
};

}  // namespace qross::qubo
