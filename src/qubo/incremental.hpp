#pragma once

// Incremental single-flip evaluation for local-search QUBO solvers.
//
// Maintains, for the current assignment x, the local field
//
//   L_i = q(i,i) + sum_{j != i} w(i,j) x_j        (w = symmetrised weight)
//
// so that the energy delta of flipping bit i is
//
//   delta_i = (1 - 2 x_i) * L_i                    — an O(1) read.
//
// Applying a flip updates all fields in O(n).  This is the inner loop of the
// simulated/digital annealers and the tabu search, so it avoids virtual
// dispatch and bounds checks in release builds.

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/model.hpp"

namespace qross::qubo {

class IncrementalEvaluator {
 public:
  /// Caches the symmetrised dense weight matrix of `model`.  The evaluator
  /// keeps a reference-independent copy, so the model may be destroyed.
  explicit IncrementalEvaluator(const QuboModel& model);

  std::size_t num_vars() const { return n_; }

  /// Resets the tracked state to x (O(n^2)).
  void set_state(std::span<const std::uint8_t> x);

  const Bits& state() const { return x_; }
  double energy() const { return energy_; }

  /// Energy delta of flipping bit i (O(1)).
  double flip_delta(std::size_t i) const {
    return x_[i] == 0 ? fields_[i] : -fields_[i];
  }

  /// Applies the flip of bit i, updating energy and all local fields (O(n)).
  void apply_flip(std::size_t i);

  /// Convenience: delta then apply.
  double flip(std::size_t i) {
    const double d = flip_delta(i);
    apply_flip(i);
    return d;
  }

 private:
  std::size_t n_;
  double offset_;
  std::vector<double> weights_;  // symmetrised dense n x n, diag = linear
  Bits x_;
  std::vector<double> fields_;
  double energy_ = 0.0;
};

}  // namespace qross::qubo
