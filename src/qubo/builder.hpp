#pragma once

// Constrained binary problem and its QUBO relaxation.
//
// Represents problems of the paper's canonical form
//
//   min_x  x^T P x + c^T x          subject to  a_r^T x = b_r  (r = 1..m)
//
// and relaxes them into
//
//   min_x  x^T P x + c^T x + A * sum_r (a_r^T x - b_r)^2
//
// where A is the relaxation parameter QROSS tunes.  The objective and the
// penalty are kept as separate QuboModels so that to_qubo(A) is a cheap
// linear combination and solvers can also report the pure objective
// ("fitness") of any assignment.

#include <cstddef>
#include <span>
#include <vector>

#include "qubo/model.hpp"

namespace qross::qubo {

/// One linear equality constraint: sum_i coeffs[i] * x[vars[i]] == rhs.
struct LinearConstraint {
  std::vector<std::size_t> vars;
  std::vector<double> coeffs;
  double rhs = 0.0;
};

/// One linear inequality: sum_i coeffs[i] * x[vars[i]] <= rhs.  Relaxed into
/// QUBO form via binary slack expansion (see add_inequality_constraint).
struct LinearInequality {
  std::vector<std::size_t> vars;
  std::vector<double> coeffs;
  double rhs = 0.0;
};

class ConstrainedProblem {
 public:
  explicit ConstrainedProblem(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }

  /// Objective terms (quadratic with i == j allowed for linear parts).
  void add_objective_term(std::size_t i, std::size_t j, double weight);
  void add_objective_offset(double delta);

  /// Registers an equality constraint; its squared violation joins the
  /// penalty model.
  void add_constraint(LinearConstraint constraint);

  /// Registers an inequality sum c_i x_i <= b by introducing binary slack
  /// variables s (appended to the variable space; returns their indices)
  /// and the equality sum c_i x_i + granularity * (1 s_0 + 2 s_1 + 4 s_2 +
  /// ...) == b.  Enough slack bits are added to cover the full range
  /// [0, b - min_achievable_lhs] in steps of `granularity`.  Requires
  /// integer-representable ranges for exact feasibility (the standard QUBO
  /// slack-encoding caveat); with granularity g, any assignment whose slack
  /// b - lhs is a multiple of g in range is exactly feasible.
  ///
  /// NOTE: this grows num_vars(); call before building solvers/evaluators.
  std::vector<std::size_t> add_inequality_constraint(
      const LinearInequality& inequality, double granularity = 1.0);

  std::size_t num_constraints() const { return constraints_.size(); }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  /// Pure original objective value of an assignment.
  double objective(std::span<const std::uint8_t> x) const;

  /// Total squared constraint violation sum_r (a_r^T x - b_r)^2.
  double violation(std::span<const std::uint8_t> x) const;

  /// True iff every constraint holds exactly (violation below tolerance).
  bool is_feasible(std::span<const std::uint8_t> x,
                   double tolerance = 1e-9) const;

  /// QUBO relaxation with penalty weight A:  objective + A * penalty.
  QuboModel to_qubo(double relaxation_parameter) const;

  /// The two components separately (objective part, penalty part).
  const QuboModel& objective_model() const { return objective_; }
  const QuboModel& penalty_model() const { return penalty_; }

 private:
  std::size_t num_vars_;
  QuboModel objective_;
  QuboModel penalty_;
  std::vector<LinearConstraint> constraints_;
};

}  // namespace qross::qubo
