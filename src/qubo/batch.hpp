#pragma once

// Solver output types.  Heuristic QUBO solvers are stochastic and return a
// *batch* of B solutions per call (paper §3.3); the surrogate only ever sees
// the batch statistics (Pf, Eavg, Estd) plus the best feasible fitness.

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "qubo/builder.hpp"
#include "qubo/model.hpp"

namespace qross::qubo {

/// One solution returned by a solver, with its QUBO energy.
struct SolveResult {
  Bits assignment;
  double qubo_energy = 0.0;
};

/// A batch of solutions from a single solver call.
struct SolveBatch {
  std::vector<SolveResult> results;

  std::size_t size() const { return results.size(); }
  bool empty() const { return results.empty(); }

  /// Index of the minimum-QUBO-energy result; requires non-empty batch.
  std::size_t best_index() const;
};

/// Batch statistics evaluated against the *original* constrained problem:
/// the exact quantities the solver surrogate learns to predict (§3.2, §3.3).
struct BatchStats {
  /// Number of solutions in the batch (paper's B).
  std::size_t batch_size = 0;
  /// Probability of feasibility: feasible count / batch size (paper eq. (1)).
  double pf = 0.0;
  /// Mean of the original-objective energies across the whole batch.  Using
  /// the objective (not the penalised QUBO energy) keeps the target defined
  /// even when no solution is feasible — the paper's §3.2 workaround.
  double energy_avg = 0.0;
  /// Population standard deviation of the same.
  double energy_std = 0.0;
  /// Minimum original objective among *feasible* solutions ("fitness"); +inf
  /// when the batch contains no feasible solution.
  double min_fitness = std::numeric_limits<double>::infinity();
  /// Best feasible assignment, if any.
  std::optional<Bits> best_feasible;

  bool has_feasible() const { return best_feasible.has_value(); }
};

/// Computes BatchStats for `batch` relative to `problem`.
BatchStats evaluate_batch(const ConstrainedProblem& problem,
                          const SolveBatch& batch,
                          double feasibility_tolerance = 1e-9);

}  // namespace qross::qubo
