#pragma once

// Vectorised multi-replica flip evaluation over one shared SparseAdjacency.
//
// IncrementalEvaluator tracks ONE replica: x (Bits), fields L_i, energy.
// ReplicaBlockEvaluator tracks a BLOCK of independent replicas ("lanes") in
// structure-of-arrays form so that one CSR row update touches 4 lanes per
// AVX2 instruction instead of one:
//
//         lane:     0      1      2      3   |   4      5      6      7
//   fields_[i]  [ L_i^0  L_i^1  L_i^2  L_i^3 | L_i^4  L_i^5  L_i^6  L_i^7 ]
//                `------ 32-byte vector -----'`------ 32-byte vector -----'
//   state_[i]   [ bit-packed x_i per lane: one std::uint64_t per 64 lanes ]
//   energies_   [  E^0    E^1    E^2    E^3  |  E^4    E^5    E^6    E^7  ]
//
// Rows are contiguous `[var][lane]` with the lane count rounded up to 4
// (lane_stride()), so every row group is a whole __m256d and the padding
// lanes ride along as zeros.  States are bit-packed per variable: the
// accept mask a solver passes to apply_flips() uses the same word layout.
//
// Numerical contract — the reason this type exists instead of "just use
// intrinsics in the solvers": every lane reproduces a scalar
// IncrementalEvaluator over the same adjacency BIT FOR BIT, on both
// dispatch arms.  set_state / apply accumulate in exactly
// IncrementalEvaluator's order; the AVX2 kernels use no FMA (the build
// never enables fma), negate via sign-bit XOR (exact for finite doubles,
// identical to multiplying by ±1.0), and mask untouched lanes with blendv
// rather than adding zero (0.0 + -0.0 would flip a sign bit).  The
// equivalence suite in tests/simd_equivalence_test.cpp enforces this.
//
// Like IncrementalEvaluator, a block is not thread-safe: one block per
// worker.  The kernel arm is chosen at construction from
// active_simd_kind() (QROSS_SIMD / set_simd_kind) and can be pinned
// explicitly for A/B tests.

#include <cstdint>
#include <span>

#include "common/aligned.hpp"
#include "qubo/model.hpp"
#include "qubo/simd.hpp"
#include "qubo/sparse.hpp"

namespace qross::qubo {

namespace detail {

/// The SoA arrays a kernel reads/writes, without the owning class.
struct BlockArrays {
  double* fields;        // num_vars * stride, 64-byte aligned
  std::uint64_t* state;  // num_vars * words
  double* energies;      // stride, 64-byte aligned
  std::size_t stride;    // lanes rounded up to 4
  std::size_t words;     // ceil(stride / 64) state/mask words per variable
};

/// Kernel-owned scratch (allocated once per evaluator, stride doubles each;
/// the scalar arm reuses lane_sign for ±1 signs and lane_mask's storage for
/// accepted-lane indices).
struct BlockScratch {
  double* lane_mask;  // 64-byte aligned
  double* lane_sign;  // 64-byte aligned
};

/// One dispatch arm.  compute_flip_deltas reads row i's fields/state and
/// writes stride deltas; apply_flips commits the accepted lanes of a
/// proposed flip of variable i (energy, packed bit, neighbour fields).
struct BlockKernel {
  void (*compute_flip_deltas)(const double* fields_row,
                              const std::uint64_t* state_row,
                              std::size_t stride, double* out);
  void (*apply_flips)(const SparseAdjacency& adj, std::size_t i,
                      const BlockArrays& arrays, const std::uint64_t* accept,
                      const double* deltas, const BlockScratch& scratch);
};

const BlockKernel& scalar_block_kernel();
/// nullptr when the binary has no AVX2 arm (non-x86 builds).
const BlockKernel* avx2_block_kernel();

}  // namespace detail

class ReplicaBlockEvaluator {
 public:
  /// Lanes per vector register group; lane_stride() is a multiple of this.
  static constexpr std::size_t kGroupLanes = 4;  // __m256d

  /// A block of `lanes` replicas over the shared adjacency, dispatching to
  /// `kind` (defaults to the process-wide active_simd_kind(); an
  /// unsupported request degrades to scalar).
  explicit ReplicaBlockEvaluator(SparseAdjacencyPtr adjacency,
                                 std::size_t lanes,
                                 SimdKind kind = active_simd_kind());

  std::size_t num_vars() const { return n_; }
  std::size_t lanes() const { return lanes_; }
  /// Lane count rounded up to kGroupLanes: the length of a fields row and
  /// of every caller-provided delta buffer.
  std::size_t lane_stride() const { return stride_; }
  /// std::uint64_t words per variable in the packed state — and per accept
  /// mask passed to apply_flips().
  std::size_t mask_words() const { return words_; }
  /// The arm this block dispatches to (after CPU clamping).
  SimdKind kind() const { return kind_; }
  const SparseAdjacencyPtr& adjacency() const { return adjacency_; }

  /// Resets lane `lane` to assignment x (O(n + nnz), scalar on both arms —
  /// same accumulation order as IncrementalEvaluator::set_state).
  void set_state(std::size_t lane, std::span<const std::uint8_t> x);

  double energy(std::size_t lane) const { return energies_[lane]; }
  bool bit(std::size_t lane, std::size_t i) const {
    return (state_[i * words_ + lane / 64] >> (lane % 64)) & 1u;
  }
  /// Lane `lane`'s current assignment, unpacked (for batch results).
  void extract_state(std::size_t lane, Bits& out) const;

  /// Energy delta of flipping bit i in one lane (O(1), scalar).
  double flip_delta(std::size_t lane, std::size_t i) const {
    const double field = fields_[i * stride_ + lane];
    return bit(lane, i) ? -field : field;
  }

  /// Deltas of flipping bit i in EVERY lane at once.  `out` must hold
  /// lane_stride() doubles; padding lanes receive ±0.0.  This is the
  /// vectorised read solvers call per proposal.
  void compute_flip_deltas(std::size_t i, double* out) const {
    kernel_->compute_flip_deltas(fields_.data() + i * stride_,
                                 state_.data() + i * words_, stride_, out);
  }

  /// Commits the flip of bit i in the lanes whose bits are set in `accept`
  /// (mask_words() words; bits past lanes() must be clear).  `deltas` is
  /// the compute_flip_deltas(i, ...) output for the CURRENT state.  Updates
  /// accepted lanes' energies, packed bits, and the deg(i) neighbour field
  /// rows; unaccepted lanes are untouched.  O(deg(i) * lanes / width).
  void apply_flips(std::size_t i, const std::uint64_t* accept,
                   const double* deltas) {
    detail::BlockArrays arrays{fields_.data(), state_.data(), energies_.data(),
                               stride_, words_};
    detail::BlockScratch scratch{lane_mask_.data(), lane_sign_.data()};
    kernel_->apply_flips(*adjacency_, i, arrays, accept, deltas, scratch);
  }

  /// Single-lane flip (O(deg(i)) scalar) for per-lane control flow like the
  /// digital annealer's pick-one-of-accepted step.
  void apply_flip_lane(std::size_t lane, std::size_t i);

 private:
  SparseAdjacencyPtr adjacency_;
  std::size_t n_;
  std::size_t lanes_;
  std::size_t stride_;
  std::size_t words_;
  SimdKind kind_;
  const detail::BlockKernel* kernel_;
  AlignedVector<double> fields_;        // n_ * stride_
  AlignedVector<std::uint64_t> state_;  // n_ * words_
  AlignedVector<double> energies_;      // stride_
  AlignedVector<double> lane_mask_;     // stride_ (kernel scratch)
  AlignedVector<double> lane_sign_;     // stride_ (kernel scratch)
};

}  // namespace qross::qubo
