#include "qubo/builder.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace qross::qubo {

ConstrainedProblem::ConstrainedProblem(std::size_t num_vars)
    : num_vars_(num_vars), objective_(num_vars), penalty_(num_vars) {}

void ConstrainedProblem::add_objective_term(std::size_t i, std::size_t j,
                                            double weight) {
  objective_.add_term(i, j, weight);
}

void ConstrainedProblem::add_objective_offset(double delta) {
  objective_.add_offset(delta);
}

void ConstrainedProblem::add_constraint(LinearConstraint constraint) {
  QROSS_REQUIRE(constraint.vars.size() == constraint.coeffs.size(),
                "constraint vars/coeffs length mismatch");
  for (std::size_t v : constraint.vars) {
    QROSS_REQUIRE(v < num_vars_, "constraint variable out of range");
  }
  // Expand (sum_i c_i x_i - b)^2 =
  //   sum_i c_i^2 x_i + 2 sum_{i<j} c_i c_j x_i x_j - 2 b sum_i c_i x_i + b^2
  // (using x_i^2 == x_i) and accumulate into the penalty model.
  const auto& vars = constraint.vars;
  const auto& coeffs = constraint.coeffs;
  const double b = constraint.rhs;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    penalty_.add_term(vars[i], vars[i], coeffs[i] * coeffs[i] - 2.0 * b * coeffs[i]);
    for (std::size_t j = i + 1; j < vars.size(); ++j) {
      penalty_.add_term(vars[i], vars[j], 2.0 * coeffs[i] * coeffs[j]);
    }
  }
  penalty_.add_offset(b * b);
  constraints_.push_back(std::move(constraint));
}

std::vector<std::size_t> ConstrainedProblem::add_inequality_constraint(
    const LinearInequality& inequality, double granularity) {
  QROSS_REQUIRE(inequality.vars.size() == inequality.coeffs.size(),
                "inequality vars/coeffs length mismatch");
  QROSS_REQUIRE(granularity > 0.0, "granularity must be positive");
  for (std::size_t v : inequality.vars) {
    QROSS_REQUIRE(v < num_vars_, "inequality variable out of range");
  }
  // Smallest achievable left-hand side (each binary var independently 0/1).
  double min_lhs = 0.0;
  for (double c : inequality.coeffs) min_lhs += std::min(c, 0.0);
  const double range = inequality.rhs - min_lhs;
  QROSS_REQUIRE(range >= 0.0,
                "inequality is infeasible for every binary assignment");

  // Slack bits with power-of-two weights: (2^k - 1) * g >= range.
  const auto steps = static_cast<std::uint64_t>(std::ceil(range / granularity));
  std::size_t bits = 0;
  while (((std::uint64_t{1} << bits) - 1) < steps) ++bits;
  if (bits == 0 && range > 0.0) bits = 1;

  // Append the slack variables to all models.
  const std::size_t first_slack = num_vars_;
  num_vars_ += bits;
  objective_.resize(num_vars_);
  penalty_.resize(num_vars_);

  // Equality: sum c_i x_i + g * sum 2^j s_j == rhs.
  LinearConstraint equality;
  equality.vars = inequality.vars;
  equality.coeffs = inequality.coeffs;
  equality.rhs = inequality.rhs;
  std::vector<std::size_t> slack_vars;
  slack_vars.reserve(bits);
  for (std::size_t j = 0; j < bits; ++j) {
    const std::size_t slack = first_slack + j;
    slack_vars.push_back(slack);
    equality.vars.push_back(slack);
    equality.coeffs.push_back(granularity *
                              static_cast<double>(std::uint64_t{1} << j));
  }
  add_constraint(std::move(equality));
  return slack_vars;
}

double ConstrainedProblem::objective(std::span<const std::uint8_t> x) const {
  return objective_.energy(x);
}

double ConstrainedProblem::violation(std::span<const std::uint8_t> x) const {
  QROSS_REQUIRE(x.size() == num_vars_, "assignment size mismatch");
  double total = 0.0;
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (std::size_t k = 0; k < c.vars.size(); ++k) {
      if (x[c.vars[k]] != 0) lhs += c.coeffs[k];
    }
    const double r = lhs - c.rhs;
    total += r * r;
  }
  return total;
}

bool ConstrainedProblem::is_feasible(std::span<const std::uint8_t> x,
                                     double tolerance) const {
  return violation(x) <= tolerance;
}

QuboModel ConstrainedProblem::to_qubo(double relaxation_parameter) const {
  QROSS_REQUIRE(std::isfinite(relaxation_parameter),
                "relaxation parameter must be finite");
  QuboModel q = objective_;
  q.add_scaled(penalty_, relaxation_parameter);
  return q;
}

}  // namespace qross::qubo
