#pragma once

// Quadratic Unconstrained Binary Optimisation model:
//
//   E(x) = offset + sum_i q(i,i) x_i + sum_{i<j} q(i,j) x_i x_j,  x in {0,1}^n
//
// Coefficients are stored densely in upper-triangular canonical form: adding
// a term (i, j, w) with i > j accumulates into (j, i).  The diagonal holds
// linear terms (x_i^2 == x_i).  A constant offset is carried along so that
// penalty expansions A*(a^T x - b)^2 keep their absolute energy scale —
// important because the paper's fitness values are compared across A.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace qross::qubo {

/// A candidate solution: one bit per variable.
using Bits = std::vector<std::uint8_t>;

class QuboModel {
 public:
  QuboModel() = default;
  explicit QuboModel(std::size_t num_vars);

  std::size_t num_vars() const { return n_; }
  double offset() const { return offset_; }
  void set_offset(double offset) { offset_ = offset; }
  void add_offset(double delta) { offset_ += delta; }

  /// Accumulates weight onto the (i, j) coefficient (canonicalised to the
  /// upper triangle; i == j is the linear term).
  void add_term(std::size_t i, std::size_t j, double weight);

  /// Coefficient in canonical form (i <= j after swap).
  double coefficient(std::size_t i, std::size_t j) const;

  /// Linear (diagonal) coefficient of variable i.
  double linear(std::size_t i) const { return coefficient(i, i); }

  /// Symmetrised off-diagonal weight: q(i,j) + q(j,i) as stored, i.e. the
  /// total interaction between i and j.  Zero when i == j.
  double interaction(std::size_t i, std::size_t j) const;

  /// Full energy evaluation, O(n^2).
  double energy(std::span<const std::uint8_t> x) const;

  /// Energy change from flipping bit i in state x, O(n).
  double flip_delta(std::span<const std::uint8_t> x, std::size_t i) const;

  /// Largest absolute coefficient (used by noise models and scaling).
  double max_abs_coefficient() const;

  /// Number of structurally non-zero coefficients.
  std::size_t num_nonzeros() const;

  /// In-place scaling of all coefficients and the offset.
  void scale(double factor);

  /// Grows the variable space to `new_num_vars` (>= current), keeping all
  /// existing coefficients; new variables start with zero terms.  Used by
  /// the slack-variable expansion of inequality constraints.
  void resize(std::size_t new_num_vars);

  /// Adds `other` (same size) coefficient-wise with a multiplier; used to
  /// compose objective + A * penalty without rebuilding either part.
  void add_scaled(const QuboModel& other, double factor);

  /// Raw dense storage (row-major n x n, upper triangular), for solvers that
  /// precompute their own adjacency.
  std::span<const double> raw() const { return q_; }

 private:
  std::size_t index(std::size_t i, std::size_t j) const { return i * n_ + j; }

  std::size_t n_ = 0;
  double offset_ = 0.0;
  std::vector<double> q_;  // dense upper-triangular, row-major
};

/// Validates that x has exactly model.num_vars() entries, all 0/1.
bool is_valid_assignment(const QuboModel& model, std::span<const std::uint8_t> x);

}  // namespace qross::qubo
