#include "qubo/incremental.hpp"

#include "common/assert.hpp"

namespace qross::qubo {

IncrementalEvaluator::IncrementalEvaluator(SparseAdjacencyPtr adjacency)
    : adjacency_(std::move(adjacency)),
      n_(adjacency_ ? adjacency_->num_vars() : 0),
      x_(n_, 0),
      fields_(n_, 0.0) {
  QROSS_REQUIRE(adjacency_ != nullptr, "adjacency required");
  set_state(x_);
}

void IncrementalEvaluator::set_state(std::span<const std::uint8_t> x) {
  QROSS_REQUIRE(x.size() == n_, "state size mismatch");
  const SparseAdjacency& adj = *adjacency_;
  x_.assign(x.begin(), x.end());
  energy_ = adj.offset();
  for (std::size_t i = 0; i < n_; ++i) {
    const auto neighbors = adj.neighbors(i);
    const auto weights = adj.weights(i);
    double field = adj.diagonal(i);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (x_[neighbors[k]] != 0) field += weights[k];
    }
    fields_[i] = field;
    if (x_[i] != 0) {
      energy_ += adj.diagonal(i);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        const std::uint32_t j = neighbors[k];
        if (j > i && x_[j] != 0) energy_ += weights[k];
      }
    }
  }
}

void IncrementalEvaluator::apply_flip(std::size_t i) {
  QROSS_ASSERT(i < n_);
  energy_ += flip_delta(i);
  const double sign = x_[i] == 0 ? 1.0 : -1.0;
  x_[i] ^= 1;
  const SparseAdjacency& adj = *adjacency_;
  const auto neighbors = adj.neighbors(i);
  const auto weights = adj.weights(i);
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    fields_[neighbors[k]] += sign * weights[k];
  }
}

}  // namespace qross::qubo
