#include "qubo/incremental.hpp"

#include "common/assert.hpp"

namespace qross::qubo {

IncrementalEvaluator::IncrementalEvaluator(const QuboModel& model)
    : n_(model.num_vars()),
      offset_(model.offset()),
      weights_(n_ * n_, 0.0),
      x_(n_, 0),
      fields_(n_, 0.0) {
  // Symmetrise: weights_[i*n+j] == weights_[j*n+i] == total interaction,
  // diagonal holds the linear coefficient.
  for (std::size_t i = 0; i < n_; ++i) {
    weights_[i * n_ + i] = model.linear(i);
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double w = model.coefficient(i, j);
      weights_[i * n_ + j] = w;
      weights_[j * n_ + i] = w;
    }
  }
  set_state(x_);
}

void IncrementalEvaluator::set_state(std::span<const std::uint8_t> x) {
  QROSS_REQUIRE(x.size() == n_, "state size mismatch");
  x_.assign(x.begin(), x.end());
  energy_ = offset_;
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = weights_.data() + i * n_;
    double field = row[i];
    for (std::size_t j = 0; j < n_; ++j) {
      if (j != i && x_[j] != 0) field += row[j];
    }
    fields_[i] = field;
    if (x_[i] != 0) {
      energy_ += row[i];
      for (std::size_t j = i + 1; j < n_; ++j) {
        if (x_[j] != 0) energy_ += row[j];
      }
    }
  }
}

void IncrementalEvaluator::apply_flip(std::size_t i) {
  QROSS_ASSERT(i < n_);
  energy_ += flip_delta(i);
  const double sign = x_[i] == 0 ? 1.0 : -1.0;
  x_[i] ^= 1;
  const double* row = weights_.data() + i * n_;
  for (std::size_t j = 0; j < n_; ++j) {
    if (j != i) fields_[j] += sign * row[j];
  }
}

}  // namespace qross::qubo
