#include "qubo/batch.hpp"

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace qross::qubo {

std::size_t SolveBatch::best_index() const {
  QROSS_REQUIRE(!results.empty(), "best_index of empty batch");
  std::size_t best = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].qubo_energy < results[best].qubo_energy) best = i;
  }
  return best;
}

BatchStats evaluate_batch(const ConstrainedProblem& problem,
                          const SolveBatch& batch,
                          double feasibility_tolerance) {
  BatchStats stats;
  stats.batch_size = batch.size();
  if (batch.empty()) return stats;

  RunningStats objective_stats;
  std::size_t feasible = 0;
  for (const auto& result : batch.results) {
    const double obj = problem.objective(result.assignment);
    objective_stats.add(obj);
    if (problem.is_feasible(result.assignment, feasibility_tolerance)) {
      ++feasible;
      if (obj < stats.min_fitness) {
        stats.min_fitness = obj;
        stats.best_feasible = result.assignment;
      }
    }
  }
  stats.pf = static_cast<double>(feasible) / static_cast<double>(batch.size());
  stats.energy_avg = objective_stats.mean();
  stats.energy_std = objective_stats.stddev();
  return stats;
}

}  // namespace qross::qubo
