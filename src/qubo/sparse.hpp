#pragma once

// Compressed-sparse-row adjacency view of a QuboModel.
//
// The paper's workloads are structurally sparse: an MVC QUBO has one
// quadratic term per graph edge, and the TSP penalty formulation has
// O(n^3) nonzeros out of O(n^4) dense entries.  SparseAdjacency stores, per
// variable, the list of neighbours it actually interacts with:
//
//   * diag_[i]            — the linear coefficient q(i, i);
//   * cols_/weights_ rows — the symmetrised off-diagonal weights w(i, j)
//                           (each i<j nonzero appears in both row i and
//                           row j), columns sorted ascending.
//
// The structure is immutable and shared by shared_ptr: one adjacency per
// solve call, however many replicas / chains / worker threads evaluate on
// it.  Energies and flip deltas accumulate in the same index order as the
// dense QuboModel loops, so results agree with QuboModel::energy and
// QuboModel::flip_delta to the last bit (modulo additions of structural
// zeros, which cannot change a finite sum).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "qubo/model.hpp"

namespace qross::qubo {

class SparseAdjacency {
 public:
  /// Builds the symmetrised CSR form of `model` (O(n^2) scan, done once per
  /// solve call).  The adjacency keeps no reference to the model.
  explicit SparseAdjacency(const QuboModel& model);

  /// Convenience: build and wrap in the shared_ptr every consumer holds.
  static std::shared_ptr<const SparseAdjacency> build(const QuboModel& model) {
    return std::make_shared<const SparseAdjacency>(model);
  }

  std::size_t num_vars() const { return n_; }
  double offset() const { return offset_; }

  /// Linear (diagonal) coefficient of variable i.
  double diagonal(std::size_t i) const { return diag_[i]; }

  /// Number of variables interacting with i.
  std::size_t degree(std::size_t i) const {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Neighbour indices of variable i, ascending.
  std::span<const std::uint32_t> neighbors(std::size_t i) const {
    return {cols_.data() + row_ptr_[i], degree(i)};
  }

  /// Symmetrised weights aligned with neighbors(i).
  std::span<const double> weights(std::size_t i) const {
    return {weights_.data() + row_ptr_[i], degree(i)};
  }

  /// Number of distinct interacting pairs (i < j with nonzero weight).
  std::size_t num_interactions() const { return cols_.size() / 2; }

  /// Structural nonzeros in upper-triangular form: nonzero diagonal entries
  /// plus num_interactions().  Matches QuboModel::num_nonzeros().
  std::size_t num_nonzeros() const { return num_nonzeros_; }

  /// num_nonzeros() over the n(n+1)/2 possible upper-triangular entries.
  double density() const;

  /// Largest absolute coefficient (diagonal or interaction).
  double max_abs_coefficient() const { return max_abs_coefficient_; }

  /// Full energy evaluation, O(n + nnz).
  double energy(std::span<const std::uint8_t> x) const;

  /// Energy change from flipping bit i in state x, O(deg(i)).
  double flip_delta(std::span<const std::uint8_t> x, std::size_t i) const;

 private:
  std::size_t n_ = 0;
  double offset_ = 0.0;
  std::size_t num_nonzeros_ = 0;
  double max_abs_coefficient_ = 0.0;
  std::vector<std::size_t> row_ptr_;    // n + 1 entries
  std::vector<std::uint32_t> cols_;     // 2 * num_interactions entries
  std::vector<double> weights_;         // aligned with cols_
  std::vector<double> diag_;            // n entries
};

using SparseAdjacencyPtr = std::shared_ptr<const SparseAdjacency>;

}  // namespace qross::qubo
