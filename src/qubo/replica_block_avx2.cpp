// AVX2 arm of the replica-block kernels.  The whole build stays at the
// portable -march=x86-64 baseline; only the functions below are compiled
// for AVX2, via per-function target attributes (the target-pragma idiom of
// competition solvers), and are reached strictly through the dispatch table
// when the CPU reports the feature.
//
// Bit-identity with the scalar arm (see replica_block.cpp) is a hard
// contract, enforced by tests/simd_equivalence_test.cpp:
//
//   * negation is a sign-bit XOR — exact, and identical to the scalar
//     arm's `bit ? -f : f` / multiply-by-±1.0 for every finite double;
//   * no FMA: the build never passes -mfma, and target("avx2") alone
//     cannot contract mul+add, so each add matches the scalar add;
//   * unaccepted lanes are preserved with blendv, never with "+ 0.0"
//     (0.0 + -0.0 would rewrite the stored sign bit).

#include "qubo/replica_block.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace qross::qubo::detail {
namespace {

constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;

/// Expands the 4 accept/state bits of lane group g (lanes 4g..4g+3, all
/// within one 64-bit word because the stride is a multiple of 4) into a
/// per-lane all-ones/all-zeros __m256d mask.
__attribute__((target("avx2"))) inline __m256d group_mask(
    const std::uint64_t* words, std::size_t g) {
  const std::uint64_t word = words[(g * 4) / 64];
  const unsigned shift = (g * 4) % 64;
  const __m256i bits = _mm256_setr_epi64x(
      static_cast<long long>(std::uint64_t{1} << shift),
      static_cast<long long>(std::uint64_t{2} << shift),
      static_cast<long long>(std::uint64_t{4} << shift),
      static_cast<long long>(std::uint64_t{8} << shift));
  const __m256i wordv = _mm256_set1_epi64x(static_cast<long long>(word));
  return _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(_mm256_and_si256(wordv, bits), bits));
}

__attribute__((target("avx2"))) void avx2_compute_flip_deltas(
    const double* fields_row, const std::uint64_t* state_row,
    std::size_t stride, double* out) {
  for (std::size_t g = 0; g < stride / 4; ++g) {
    const __m256d fields = _mm256_load_pd(fields_row + g * 4);
    // Lanes with x_i == 1 negate their field: flip the sign bit.
    const __m256d sign = _mm256_and_pd(
        group_mask(state_row, g),
        _mm256_castsi256_pd(_mm256_set1_epi64x(static_cast<long long>(kSignBit))));
    _mm256_storeu_pd(out + g * 4, _mm256_xor_pd(fields, sign));
  }
}

/// Register-resident specialisation for the hot small strides (the solver
/// kernels block 8 replicas → G == 2): accept masks and update signs live
/// in __m256d registers across the whole neighbour loop instead of being
/// reloaded from scratch per row.  Arithmetic is identical to the generic
/// path below — specialisation changes scheduling, never values.
template <std::size_t G>
__attribute__((target("avx2"))) void avx2_apply_flips_fixed(
    const SparseAdjacency& adj, std::size_t i, const BlockArrays& arrays,
    const std::uint64_t* accept, const double* deltas) {
  const __m256d signbit = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(kSignBit)));
  std::uint64_t* state_row = arrays.state + i * arrays.words;
  __m256d mask[G];
  __m256d sign[G];
  for (std::size_t g = 0; g < G; ++g) {
    mask[g] = group_mask(accept, g);
    const __m256d energy = _mm256_load_pd(arrays.energies + g * 4);
    const __m256d bumped =
        _mm256_add_pd(energy, _mm256_loadu_pd(deltas + g * 4));
    _mm256_store_pd(arrays.energies + g * 4,
                    _mm256_blendv_pd(energy, bumped, mask[g]));
  }
  for (std::size_t w = 0; w < arrays.words; ++w) state_row[w] ^= accept[w];
  for (std::size_t g = 0; g < G; ++g) {
    sign[g] = _mm256_andnot_pd(group_mask(state_row, g), signbit);
  }
  const auto neighbors = adj.neighbors(i);
  const auto weights = adj.weights(i);
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    double* row = arrays.fields + neighbors[k] * arrays.stride;
    const __m256d weight = _mm256_set1_pd(weights[k]);
    for (std::size_t g = 0; g < G; ++g) {
      const __m256d addend = _mm256_xor_pd(weight, sign[g]);
      const __m256d fields = _mm256_load_pd(row + g * 4);
      _mm256_store_pd(row + g * 4,
                      _mm256_blendv_pd(fields, _mm256_add_pd(fields, addend),
                                       mask[g]));
    }
  }
}

__attribute__((target("avx2"))) void avx2_apply_flips(
    const SparseAdjacency& adj, std::size_t i, const BlockArrays& arrays,
    const std::uint64_t* accept, const double* deltas,
    const BlockScratch& scratch) {
  const std::size_t groups = arrays.stride / 4;
  if (groups == 2) {
    return avx2_apply_flips_fixed<2>(adj, i, arrays, accept, deltas);
  }
  if (groups == 1) {
    return avx2_apply_flips_fixed<1>(adj, i, arrays, accept, deltas);
  }
  const __m256d signbit = _mm256_castsi256_pd(
      _mm256_set1_epi64x(static_cast<long long>(kSignBit)));
  std::uint64_t* state_row = arrays.state + i * arrays.words;

  // Commit energies of accepted lanes and cache per-group masks; then flip
  // the packed bits and derive the field-update sign from the NEW bit
  // (bit now 1 → +w to neighbours; bit now 0 → -w), which equals the
  // scalar arm's old-bit rule.
  for (std::size_t g = 0; g < groups; ++g) {
    const __m256d mask = group_mask(accept, g);
    const __m256d energy = _mm256_load_pd(arrays.energies + g * 4);
    const __m256d bumped =
        _mm256_add_pd(energy, _mm256_loadu_pd(deltas + g * 4));
    _mm256_store_pd(arrays.energies + g * 4,
                    _mm256_blendv_pd(energy, bumped, mask));
    _mm256_store_pd(scratch.lane_mask + g * 4, mask);
  }
  for (std::size_t w = 0; w < arrays.words; ++w) state_row[w] ^= accept[w];
  for (std::size_t g = 0; g < groups; ++g) {
    // Sign bit set where the new state bit is 0 (subtract w).
    const __m256d sign = _mm256_andnot_pd(group_mask(state_row, g), signbit);
    _mm256_store_pd(scratch.lane_sign + g * 4, sign);
  }

  const auto neighbors = adj.neighbors(i);
  const auto weights = adj.weights(i);
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    double* row = arrays.fields + neighbors[k] * arrays.stride;
    const __m256d weight = _mm256_set1_pd(weights[k]);
    for (std::size_t g = 0; g < groups; ++g) {
      const __m256d addend =
          _mm256_xor_pd(weight, _mm256_load_pd(scratch.lane_sign + g * 4));
      const __m256d fields = _mm256_load_pd(row + g * 4);
      const __m256d updated = _mm256_add_pd(fields, addend);
      _mm256_store_pd(
          row + g * 4,
          _mm256_blendv_pd(fields, updated,
                           _mm256_load_pd(scratch.lane_mask + g * 4)));
    }
  }
}

constexpr BlockKernel kAvx2Kernel{avx2_compute_flip_deltas, avx2_apply_flips};

}  // namespace

const BlockKernel* avx2_block_kernel() { return &kAvx2Kernel; }

}  // namespace qross::qubo::detail

#else  // non-x86: no AVX2 arm in this binary.

namespace qross::qubo::detail {
const BlockKernel* avx2_block_kernel() { return nullptr; }
}  // namespace qross::qubo::detail

#endif
