#include "qubo/model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace qross::qubo {

QuboModel::QuboModel(std::size_t num_vars) : n_(num_vars), q_(n_ * n_, 0.0) {}

void QuboModel::add_term(std::size_t i, std::size_t j, double weight) {
  QROSS_REQUIRE(i < n_ && j < n_, "QUBO term index out of range");
  if (i > j) std::swap(i, j);
  q_[index(i, j)] += weight;
}

double QuboModel::coefficient(std::size_t i, std::size_t j) const {
  QROSS_REQUIRE(i < n_ && j < n_, "QUBO coefficient index out of range");
  if (i > j) std::swap(i, j);
  return q_[index(i, j)];
}

double QuboModel::interaction(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  return coefficient(i, j);
}

double QuboModel::energy(std::span<const std::uint8_t> x) const {
  QROSS_REQUIRE(x.size() == n_, "assignment size mismatch");
  double e = offset_;
  for (std::size_t i = 0; i < n_; ++i) {
    if (x[i] == 0) continue;
    const double* row = q_.data() + i * n_;
    e += row[i];
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (x[j] != 0) e += row[j];
    }
  }
  return e;
}

double QuboModel::flip_delta(std::span<const std::uint8_t> x,
                             std::size_t i) const {
  QROSS_REQUIRE(x.size() == n_, "assignment size mismatch");
  QROSS_REQUIRE(i < n_, "flip index out of range");
  // Local field: linear term plus interactions with currently-set bits.
  double field = q_[index(i, i)];
  for (std::size_t j = 0; j < i; ++j) {
    if (x[j] != 0) field += q_[index(j, i)];
  }
  for (std::size_t j = i + 1; j < n_; ++j) {
    if (x[j] != 0) field += q_[index(i, j)];
  }
  return x[i] == 0 ? field : -field;
}

double QuboModel::max_abs_coefficient() const {
  double m = 0.0;
  for (double v : q_) m = std::max(m, std::abs(v));
  return m;
}

std::size_t QuboModel::num_nonzeros() const {
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i; j < n_; ++j) {
      if (q_[index(i, j)] != 0.0) ++nnz;
    }
  }
  return nnz;
}

void QuboModel::scale(double factor) {
  for (double& v : q_) v *= factor;
  offset_ *= factor;
}

void QuboModel::resize(std::size_t new_num_vars) {
  QROSS_REQUIRE(new_num_vars >= n_, "resize cannot shrink the model");
  if (new_num_vars == n_) return;
  std::vector<double> grown(new_num_vars * new_num_vars, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i; j < n_; ++j) {
      grown[i * new_num_vars + j] = q_[index(i, j)];
    }
  }
  n_ = new_num_vars;
  q_ = std::move(grown);
}

void QuboModel::add_scaled(const QuboModel& other, double factor) {
  QROSS_REQUIRE(other.n_ == n_, "QUBO size mismatch in add_scaled");
  for (std::size_t k = 0; k < q_.size(); ++k) q_[k] += factor * other.q_[k];
  offset_ += factor * other.offset_;
}

bool is_valid_assignment(const QuboModel& model,
                         std::span<const std::uint8_t> x) {
  if (x.size() != model.num_vars()) return false;
  return std::all_of(x.begin(), x.end(),
                     [](std::uint8_t b) { return b == 0 || b == 1; });
}

}  // namespace qross::qubo
