#pragma once

// Runtime SIMD dispatch for the replica-block evaluation core.
//
// The build stays at the portable -march=x86-64 baseline; the AVX2 kernels
// are compiled per-function with __attribute__((target("avx2"))) (the
// target-pragma idiom of competition solvers) and selected once at startup:
//
//   * QROSS_SIMD=scalar | avx2 | auto   environment override, read once;
//   * set_simd_kind()                   test override, takes effect for
//                                       evaluators constructed afterwards;
//   * otherwise auto: avx2 iff the CPU reports it, else scalar.
//
// Requesting avx2 on a CPU without it falls back to scalar — dispatch picks
// a kernel the machine can run, it never SIGILLs.  The chosen kernel is
// surfaced in ServiceMetrics / the net Metrics frame / `qross remote
// metrics` so a fleet operator can see which arm every daemon runs.

#include <cstdint>

namespace qross::qubo {

enum class SimdKind : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

const char* to_string(SimdKind kind);

/// True iff this process may execute AVX2 instructions (x86-64 with the
/// cpuid bit; always false elsewhere).
bool cpu_supports_avx2();

/// The kernel new ReplicaBlockEvaluators dispatch to.  First call resolves
/// the QROSS_SIMD environment override (then caches it); set_simd_kind()
/// replaces the choice.  Unsupported requests degrade to kScalar.
SimdKind active_simd_kind();

/// Test/benchmark override of the dispatch choice.  A kind the CPU cannot
/// run is clamped to kScalar; returns the kind actually installed.
SimdKind set_simd_kind(SimdKind kind);

}  // namespace qross::qubo
