// QAP penalty study: the paper's second validation domain (§3.1 footnote 2
// pairs QAPLIB with simulated annealing).  Loads a QAPLIB-format instance
// (here: embedded text, but any .dat file works via parse_qaplib), sweeps
// the relaxation parameter, and shows that the best assignments appear on
// the Pf slope — the same structure QROSS exploits for TSP.

#include <cstdio>
#include <memory>
#include <sstream>

#include "problems/qap/qap.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/simulated_annealer.hpp"

using namespace qross;

namespace {

// A small QAPLIB-format instance (8 facilities), embedded for convenience.
constexpr const char* kInstanceText = R"(8
 0  5  2  4  1  0  0  6
 5  0  3  0  2  2  2  0
 2  3  0  0  0  0  0  5
 4  0  0  0  5  2  2 10
 1  2  0  5  0 10  0  0
 0  2  0  2 10  0  5  1
 0  2  0  2  0  5  0 10
 6  0  5 10  0  1 10  0

 0  8 15 14 13 12  9  7
 8  0  6  8 12 14 12 10
15  6  0  5  9 13 13 12
14  8  5  0  4  8  9  9
13 12  9  4  0  5  6  7
12 14 13  8  5  0  3  5
 9 12 13  9  6  3  0  3
 7 10 12  9  7  5  3  0
)";

}  // namespace

int main() {
  const qap::QapInstance instance =
      qap::parse_qaplib_string(kInstanceText, "embedded8");
  std::printf("QAP instance '%s': %zu facilities\n", instance.name().c_str(),
              instance.size());

  const qap::QapExact optimum = qap::solve_exact_qap(instance);
  std::printf("exact optimum cost: %.0f (assignment:", optimum.cost);
  for (std::size_t l : optimum.assignment) std::printf(" %zu", l);
  std::printf(")\n\n");

  const auto problem = qap::build_qap_problem(instance);
  solvers::BatchRunner runner(problem,
                              std::make_shared<solvers::SimulatedAnnealer>(),
                              solvers::SolveOptions{.num_replicas = 24,
                                                    .num_sweeps = 200,
                                                    .seed = 13});

  std::printf("%8s %6s %10s %10s\n", "A", "Pf", "best_cost", "vs_opt");
  for (double a : {50.0, 100.0, 200.0, 350.0, 600.0, 1000.0, 2000.0, 4000.0}) {
    const auto sample = runner.run(a);
    if (sample.stats.has_feasible()) {
      std::printf("%8.0f %6.2f %10.0f %+9.1f%%\n", a, sample.stats.pf,
                  sample.stats.min_fitness,
                  100.0 * (sample.stats.min_fitness / optimum.cost - 1.0));
    } else {
      std::printf("%8.0f %6.2f %10s %10s\n", a, sample.stats.pf, "-", "-");
    }
  }
  std::printf("\nThe best costs cluster where 0 < Pf < 1 — the paper's\n"
              "hypothesis, verified here on the QAP/SA pairing.\n");
  return 0;
}
