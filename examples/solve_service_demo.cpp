// Solve-service walkthrough: the async layer above a solver call.
//
// Demonstrates, on small MVC instances:
//   1. concurrent submission with priorities — high-priority jobs jump the
//      queue while the workers are busy;
//   2. request coalescing + the LRU result cache — resubmitting an
//      identical job costs zero solver invocations and returns the
//      bit-identical batch;
//   3. cooperative cancellation — a deliberately huge job is cancelled and
//      its kernel exits within one sweep;
//   4. a queued job with an already-expired deadline that never starts;
//   5. the ServiceMetrics snapshot.
//
// Build: cmake --build build --target example_solve_service_demo

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "problems/mvc/mvc.hpp"
#include "qross/qross.hpp"

using namespace qross;

namespace {

void print_metrics(const service::ServiceMetrics& m) {
  std::printf("  workers=%zu queue=%zu running=%zu\n", m.workers,
              m.queue_depth, m.running);
  std::printf("  jobs: %zu submitted, %zu done, %zu cancelled, %zu expired\n",
              m.submitted, m.completed, m.cancelled, m.expired);
  std::printf("  cache: %zu hits / %zu misses, %zu coalesced, "
              "%zu solver invocations\n",
              m.cache_hits, m.cache_misses, m.coalesced, m.solver_invocations);
  std::printf("  latency: wait p50=%.1fms p99=%.1fms | run p50=%.1fms "
              "p99=%.1fms | %.1f jobs/s\n",
              m.queue_wait.p50_ms, m.queue_wait.p99_ms, m.run.p50_ms,
              m.run.p99_ms, m.jobs_per_second);
}

}  // namespace

int main() {
  service::ServiceConfig config;
  config.num_workers = 2;
  service::SolveService svc(config);
  const auto solver = std::make_shared<solvers::DigitalAnnealer>();

  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 60;

  // --- 1. priorities -------------------------------------------------------
  std::printf("== submitting 6 jobs (last two at priority 10) ==\n");
  std::vector<service::JobHandle> handles;
  std::vector<qubo::QuboModel> models;
  for (std::size_t k = 0; k < 6; ++k) {
    const auto instance = mvc::generate_random_mvc(96, 0.08, 0x100 + k);
    models.push_back(instance.to_qubo(2.0));
  }
  for (std::size_t k = 0; k < 6; ++k) {
    service::SubmitOptions submit;
    submit.priority = k >= 4 ? 10 : 0;
    handles.push_back(svc.submit(solver, models[k], options, submit));
  }
  for (std::size_t k = 0; k < 6; ++k) {
    const auto result = handles[k].wait();
    std::printf("  job %zu: %-9s wait=%6.1fms run=%6.1fms best=%.1f\n", k,
                service::to_string(result.status), result.wait_ms,
                result.run_ms,
                result.batch->results[result.batch->best_index()].qubo_energy);
  }

  // --- 2. cache + coalescing ----------------------------------------------
  std::printf("== resubmitting job 0 three times (identical fingerprint) ==\n");
  for (int round = 0; round < 3; ++round) {
    const auto result = svc.submit(solver, models[0], options).wait();
    std::printf("  round %d: %s via %s\n", round,
                service::to_string(result.status),
                result.cache_hit ? "cache (bit-identical batch, no solver "
                                   "invocation)"
                                 : "solver");
  }

  // --- 3. cooperative cancellation ----------------------------------------
  std::printf("== cancelling a 1,000,000-sweep job mid-run ==\n");
  solvers::SolveOptions huge = options;
  huge.num_sweeps = 1'000'000;
  auto doomed = svc.submit(solver, models[1], huge);
  while (doomed.status() == service::JobStatus::queued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto cancel_started = std::chrono::steady_clock::now();
  doomed.cancel();
  const auto cancelled = doomed.wait();
  std::printf("  status=%s, kernel exited %.1fms after cancel "
              "(partial batch of %zu results attached)\n",
              service::to_string(cancelled.status),
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - cancel_started)
                  .count(),
              cancelled.batch ? cancelled.batch->size() : 0);

  // --- 4. deadline expiry while queued -------------------------------------
  std::printf("== submitting with an already-passed deadline ==\n");
  service::SubmitOptions expired_submit;
  expired_submit.deadline = std::chrono::steady_clock::now();
  const auto expired = svc.submit(solver, models[2], huge, expired_submit).wait();
  std::printf("  status=%s (solver never invoked, no batch: %s)\n",
              service::to_string(expired.status),
              expired.batch == nullptr ? "true" : "false");

  // --- 5. metrics -----------------------------------------------------------
  std::printf("== service metrics ==\n");
  print_metrics(svc.metrics());
  return 0;
}
