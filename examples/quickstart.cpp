// Quickstart: relax a small TSP into a QUBO, pick a relaxation parameter,
// and solve it with the Digital Annealer simulator.
//
// This example uses no machine learning — it shows the substrate API that
// QROSS builds on: problem -> constrained form -> QUBO(A) -> solver batch ->
// decoded tour.  See tsp_pipeline.cpp for the full QROSS workflow.

#include <cstdio>

#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/digital_annealer.hpp"

using namespace qross;

int main() {
  // 1. A random 10-city Euclidean TSP.
  const tsp::TspInstance instance = tsp::generate_uniform(10, /*seed=*/2024);
  std::printf("instance: %s, %zu cities, mean pairwise distance %.1f\n",
              instance.name().c_str(), instance.num_cities(),
              instance.mean_distance());

  // 2. Constrained binary form: objective = tour length, 2n one-hot
  //    constraints (Lucas 2014 formulation).
  const qubo::ConstrainedProblem problem = tsp::build_tsp_problem(instance);
  std::printf("QUBO variables: %zu, constraints: %zu\n", problem.num_vars(),
              problem.num_constraints());

  // 3. Pick a relaxation parameter.  Without QROSS a common heuristic is
  //    "a bit above the longest edge" — enough for feasibility to dominate
  //    without flattening the objective.
  const double a = 0.7 * instance.max_distance();
  std::printf("relaxation parameter A = %.1f\n", a);

  // 4. One batch call to the Digital Annealer simulator.
  solvers::BatchRunner runner(problem,
                              std::make_shared<solvers::DigitalAnnealer>(),
                              solvers::SolveOptions{.num_replicas = 16,
                                                    .num_sweeps = 80,
                                                    .seed = 7});
  const solvers::SolverSample sample = runner.run(a);
  std::printf("batch: Pf = %.2f, mean objective = %.1f, best fitness = %.1f\n",
              sample.stats.pf, sample.stats.energy_avg,
              sample.stats.min_fitness);

  // 5. Decode the best feasible assignment into a tour.
  if (!sample.stats.has_feasible()) {
    std::printf("no feasible solution in the batch — try a larger A\n");
    return 1;
  }
  const auto tour = tsp::decode_tour(instance, *sample.stats.best_feasible);
  std::printf("tour:");
  for (std::size_t city : *tour) std::printf(" %zu", city);
  std::printf("\nlength %.2f (reference 2-opt: %.2f)\n",
              instance.tour_length(*tour),
              tsp::reference_solution(instance).length);
  return 0;
}
