// Vehicle-route planning — the motivating workload from the paper's
// introduction: "a car company has to do vehicle routing in a city many
// times a day" (§3.1).  Day after day the instances share structure (same
// city, similar stop patterns), so a surrogate trained on past days
// proposes good penalty parameters for today's route in ONE solver call.
//
// Scenario: a depot plus daily delivery stops drawn from the same city
// blocks.  We train on a week of history, then plan three new days with a
// single Qbsolv call each, steered by PBS(90%) — the paper's recipe when
// one feasible solution per instance is the priority.

#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "qross/strategies.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/qbsolv.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"
#include "surrogate/pipeline.hpp"

using namespace qross;

namespace {

/// A "day" of deliveries: the depot at the city centre plus stops clustered
/// around fixed commercial blocks, with per-day jitter.
tsp::TspInstance make_day(std::size_t num_stops, std::uint64_t day_seed) {
  Rng rng(day_seed);
  // Fixed city blocks (same every day — the shared structure).
  const std::vector<tsp::Point> blocks{
      {20.0, 25.0}, {70.0, 30.0}, {45.0, 75.0}, {85.0, 80.0}};
  std::vector<tsp::Point> stops;
  stops.push_back({50.0, 50.0});  // depot
  for (std::size_t i = 1; i < num_stops; ++i) {
    const auto& block = blocks[rng.uniform_int(blocks.size())];
    stops.push_back({block.x + rng.normal(0.0, 6.0),
                     block.y + rng.normal(0.0, 6.0)});
  }
  return tsp::TspInstance("day" + std::to_string(day_seed), std::move(stops));
}

}  // namespace

int main() {
  solvers::QbsolvParams params;
  params.num_rounds = 1;
  params.subsolver_sweeps = 20;
  const auto solver = std::make_shared<solvers::Qbsolv>(params);
  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 20;
  options.seed = 5;

  // ---- Train on last week's routes. --------------------------------------
  std::printf("training on 7 days of route history...\n");
  std::vector<tsp::TspInstance> history;
  for (std::uint64_t day = 1; day <= 7; ++day) {
    history.push_back(make_day(9, day));
  }
  surrogate::SweepConfig sweep;
  sweep.slope_points = 6;
  sweep.plateau_points = 2;
  const auto dataset = surrogate::build_dataset(history, solver, options, sweep);
  surrogate::SolverSurrogate surrogate;
  surrogate.train(dataset);
  std::printf("surrogate trained on %zu solver calls\n\n", dataset.rows.size());

  // ---- Plan new days: ONE solver call each. -------------------------------
  const core::PfBasedStrategy pbs(0.9);
  for (std::uint64_t day = 8; day <= 10; ++day) {
    const auto today = make_day(9, day);
    const surrogate::PreparedTspInstance prepared(today);
    const auto features = surrogate::extract_features(prepared.prepared());

    core::StrategyContext context;
    context.surrogate = &surrogate;
    context.features = features;
    context.anchor = surrogate::scale_anchor(features);
    context.a_min = 1.0;
    context.a_max = 100.0;
    context.batch_size = options.num_replicas;

    double a = pbs.propose(context);
    solvers::BatchRunner runner(prepared.problem(), solver, options);
    auto sample = runner.run(a);
    if (!sample.stats.has_feasible()) {
      // Practitioner's fallback: one retry with the penalty pushed firmly
      // into the feasible plateau.  Still at most two calls for the day.
      a *= 1.6;
      sample = runner.run(a);
    }

    std::printf("day %2llu: A = %5.1f (%zu call%s) -> ",
                static_cast<unsigned long long>(day), a, runner.num_calls(),
                runner.num_calls() == 1 ? "" : "s");
    if (sample.stats.has_feasible()) {
      const auto tour =
          tsp::decode_tour(prepared.prepared(), *sample.stats.best_feasible);
      const double length = today.tour_length(*tour);
      const double reference = tsp::reference_solution(today).length;
      std::printf("route length %.1f (2-opt reference %.1f, gap %+.1f%%), "
                  "route:", length, reference,
                  100.0 * (length / reference - 1.0));
      for (std::size_t stop : *tour) std::printf(" %zu", stop);
      std::printf("\n");
    } else {
      std::printf("no feasible route (Pf = %.2f)\n", sample.stats.pf);
    }
  }
  std::printf("\nEach new day used at most two QUBO solver calls.\n");
  return 0;
}
