// Warehouse task allocation — the paper's other motivating workload ("a
// logistic company has to manage allocations in a warehouse repeatedly").
//
// Demonstrates the inequality-constrained side of the library: per-station
// capacity limits enter the QUBO through binary slack variables, and the
// relaxation parameter A trades feasibility (capacity + one-hot penalties)
// against assignment cost exactly as in the TSP case study.

#include <cmath>
#include <cstdio>
#include <memory>

#include "problems/allocation/allocation.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/simulated_annealer.hpp"

using namespace qross;

int main() {
  // 8 picking tasks onto 3 packing stations.
  const auto instance = allocation::generate_random_allocation(8, 3, 0x77A3);
  std::printf("instance %s: %zu tasks -> %zu stations\n",
              instance.name().c_str(), instance.num_tasks(),
              instance.num_machines());
  std::printf("station capacities:");
  for (std::size_t k = 0; k < instance.num_machines(); ++k) {
    std::printf(" %.0f", instance.capacity(k));
  }
  std::printf("\n");

  const auto exact = allocation::solve_exact_allocation(instance);
  std::printf("exact optimum: cost %.0f, assignment:", exact.cost);
  for (std::size_t machine : exact.assignment) std::printf(" %zu", machine);
  std::printf("\n\n");

  const auto qubo = allocation::build_allocation_problem(instance);
  std::printf("QUBO: %zu variables (%zu decision + %zu capacity slack), "
              "%zu constraints\n\n",
              qubo.problem.num_vars(),
              instance.num_tasks() * instance.num_machines(),
              qubo.problem.num_vars() -
                  instance.num_tasks() * instance.num_machines(),
              qubo.problem.num_constraints());

  solvers::BatchRunner runner(qubo.problem,
                              std::make_shared<solvers::SimulatedAnnealer>(),
                              solvers::SolveOptions{.num_replicas = 16,
                                                    .num_sweeps = 400,
                                                    .seed = 5});
  std::printf("%8s %6s %10s %8s\n", "A", "Pf", "best_cost", "vs_opt");
  for (double a : {2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0}) {
    const auto sample = runner.run(a);
    if (sample.stats.has_feasible()) {
      const auto decoded = allocation::decode_allocation(
          instance, *sample.stats.best_feasible);
      const double cost = instance.total_cost(*decoded);
      std::printf("%8.0f %6.2f %10.0f %+7.1f%%\n", a, sample.stats.pf, cost,
                  100.0 * (cost / exact.cost - 1.0));
    } else {
      std::printf("%8.0f %6.2f %10s %8s\n", a, sample.stats.pf, "-", "-");
    }
  }
  std::printf("\nSame story as TSP: too-small A leaves capacities violated,\n"
              "too-large A buries the cost signal; the sweet spot sits on\n"
              "the Pf slope — which is exactly what QROSS learns to find.\n");
  return 0;
}
