// Solver playground: run all four QUBO solver kernels on the same TSP
// relaxation and compare batch statistics side by side.  Useful for getting
// a feel for how solver choice changes the (Pf, energy) response that QROSS
// models.

#include <cstdio>
#include <memory>

#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/parallel_tempering.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "solvers/tabu_search.hpp"
#include "surrogate/pipeline.hpp"

using namespace qross;

int main(int argc, char** argv) {
  const std::size_t cities = argc > 1 ? std::stoul(argv[1]) : 10;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 1;

  const auto instance = tsp::generate_uniform(cities, seed);
  const surrogate::PreparedTspInstance prepared(instance);
  const double reference = tsp::reference_solution(instance).length;
  std::printf("%zu-city TSP (seed %llu), reference tour %.2f\n",
              cities, static_cast<unsigned long long>(seed), reference);
  std::printf("QUBO: %zu variables (prepared scale: mean distance %.1f)\n\n",
              prepared.problem().num_vars(),
              prepared.prepared().mean_distance());

  struct Entry {
    const char* label;
    solvers::SolverPtr solver;
    std::size_t sweeps;
  };
  const Entry entries[] = {
      {"digital annealer", std::make_shared<solvers::DigitalAnnealer>(), 60},
      {"simulated annealing", std::make_shared<solvers::SimulatedAnnealer>(),
       200},
      {"tabu search", std::make_shared<solvers::TabuSearch>(), 40},
      {"qbsolv hybrid", std::make_shared<solvers::Qbsolv>(), 20},
      {"parallel tempering", std::make_shared<solvers::ParallelTempering>(),
       150},
  };

  std::printf("%-20s %6s %6s %9s %9s %10s\n", "solver", "A", "Pf", "E_avg",
              "best", "gap");
  for (const auto& entry : entries) {
    solvers::SolveOptions options;
    options.num_replicas = 12;
    options.num_sweeps = entry.sweeps;
    options.seed = 42;
    solvers::BatchRunner runner(prepared.problem(), entry.solver, options);
    for (double a : {15.0, 25.0, 40.0}) {
      const auto sample = runner.run(a);
      if (sample.stats.has_feasible()) {
        const double best =
            prepared.to_original_length(sample.stats.min_fitness);
        std::printf("%-20s %6.1f %6.2f %9.2f %9.2f %+9.2f%%\n", entry.label,
                    a, sample.stats.pf, sample.stats.energy_avg, best,
                    100.0 * (best / reference - 1.0));
      } else {
        std::printf("%-20s %6.1f %6.2f %9.2f %9s %10s\n", entry.label, a,
                    sample.stats.pf, sample.stats.energy_avg, "-", "-");
      }
    }
  }
  std::printf("\nNote how the feasibility transition and the quality-vs-A\n"
              "trade-off differ per solver — the reason QROSS trains one\n"
              "surrogate per solver.\n");
  return 0;
}
