// Network front-end demo: a SolveService served over a socket, in process.
//
// Starts qross::net::Server on an ephemeral loopback port, connects the
// blocking Client, and walks the protocol end to end — submit with
// streamed status updates, a duplicate submission served from the server's
// cache, an explicit cancel, and a metrics round trip.  The same wire
// protocol runs between machines; `tools/qrossd.cpp` is the standalone
// daemon and `qross_cli remote batch` the production client.

#include <cstdio>

#include "net/client.hpp"
#include "net/server.hpp"
#include "problems/mvc/mvc.hpp"
#include "service/solve_service.hpp"

using namespace qross;

int main() {
  service::ServiceConfig service_config;
  service_config.num_workers = 2;
  service::SolveService service(service_config);

  net::ServerConfig server_config;
  server_config.listen.push_back(
      *net::Endpoint::parse("tcp:127.0.0.1:0"));  // ephemeral port
  net::Server server(service, server_config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  const auto endpoint = server.endpoints().front();
  std::printf("server listening on %s\n", endpoint.to_string().c_str());

  net::ClientConfig client_config;
  client_config.server = endpoint;
  net::Client client(client_config);
  if (!client.connect(&error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("negotiated protocol v%u\n\n", client.negotiated_version());

  // One MVC instance, solved remotely with streamed status updates.
  const auto instance = mvc::generate_random_mvc(48, 0.10, 42);
  net::RemoteJob job;
  job.solver = "da";
  job.model = instance.to_qubo(2.0);
  job.num_replicas = 8;
  job.num_sweeps = 40;
  job.stream_status = true;

  const auto tag = client.submit(job);
  if (!tag.has_value()) {
    std::fprintf(stderr, "submit failed\n");
    return 1;
  }
  auto result = client.wait(*tag);
  std::printf("job %llu: %s via %s (%zu solutions, best energy %.3f)\n",
              static_cast<unsigned long long>(*tag),
              service::to_string(result.status),
              result.cache_hit ? "cache" : "solver",
              result.batch ? result.batch->size() : 0,
              result.batch && !result.batch->empty()
                  ? result.batch->results[result.batch->best_index()]
                        .qubo_energy
                  : 0.0);
  for (const auto status : client.status_updates(*tag)) {
    std::printf("  streamed status: %s\n", service::to_string(status));
  }

  // The same job again: served from the daemon-side result cache,
  // bit-identical, no second solver run.
  const auto again = client.submit(job);
  result = client.wait(*again);
  std::printf("job %llu: %s via %s\n",
              static_cast<unsigned long long>(*again),
              service::to_string(result.status),
              result.cache_hit ? "cache" : "solver");

  // Cancel a long job right after submitting it.
  net::RemoteJob slow = job;
  slow.num_sweeps = 200000;
  slow.seed = 999;  // different fingerprint: no cache hit
  const auto slow_tag = client.submit(slow);
  client.cancel(*slow_tag);
  result = client.wait(*slow_tag);
  std::printf("job %llu: %s after cancel\n\n",
              static_cast<unsigned long long>(*slow_tag),
              service::to_string(result.status));

  if (const auto metrics = client.metrics()) {
    std::printf("server metrics: %zu submitted, %zu cache hits, "
                "%zu solver invocations, %llu connections\n",
                metrics->service.submitted, metrics->service.cache_hits,
                metrics->service.solver_invocations,
                static_cast<unsigned long long>(
                    metrics->connections_accepted));
  }
  server.stop();
  return 0;
}
