// The full QROSS workflow on TSP (paper Fig. 2):
//
//   1. collect solver responses on a history of instances (training),
//   2. train the solver surrogate (Pf / Eavg / Estd heads),
//   3. on a NEW instance, propose relaxation parameters offline (MFS, PBS)
//      and online (OFS) and compare against a random-search baseline.
//
// Sized to run in well under a minute on one core.

#include <cmath>
#include <cstdio>
#include <memory>

#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "qross/session.hpp"
#include "qross/strategies.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/qbsolv.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"
#include "surrogate/pipeline.hpp"
#include "tuning/random_search.hpp"

using namespace qross;

int main() {
  // -- 1. History: 10 small instances, swept with the Qbsolv hybrid. ------
  std::printf("[1/3] building training dataset from solver history...\n");
  const auto history = tsp::generate_synthetic_dataset(10, 7, 10, 0xCAFE);
  solvers::QbsolvParams solver_params;
  solver_params.num_rounds = 1;
  solver_params.subsolver_sweeps = 20;
  const auto solver = std::make_shared<solvers::Qbsolv>(solver_params);

  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 20;
  options.seed = 99;

  surrogate::SweepConfig sweep;
  sweep.slope_points = 6;
  sweep.plateau_points = 2;
  const surrogate::Dataset dataset =
      surrogate::build_dataset(history, solver, options, sweep);
  std::printf("      %zu labelled solver calls\n", dataset.rows.size());

  // -- 2. Train the surrogate. ---------------------------------------------
  std::printf("[2/3] training solver surrogate...\n");
  surrogate::SolverSurrogate surrogate;
  const auto [pf_history, energy_history] = surrogate.train(dataset);
  std::printf("      Pf head: %zu epochs (best val %.4f); energy head: %zu "
              "epochs (best val %.4f)\n",
              pf_history.train_loss.size(), pf_history.best_val_loss,
              energy_history.train_loss.size(), energy_history.best_val_loss);

  // -- 3. Tune a fresh instance. -------------------------------------------
  std::printf("[3/3] tuning a new instance...\n");
  const auto instance = tsp::generate_uniform(9, 0xF0E5);
  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const double reference = tsp::reference_solution(instance).length;

  core::StrategyContext context;
  context.surrogate = &surrogate;
  context.features = features;
  context.anchor = surrogate::scale_anchor(features);
  context.a_min = 1.0;
  context.a_max = 100.0;
  context.batch_size = options.num_replicas;

  // Offline proposals — zero solver calls so far.
  const core::MinimumFitnessStrategy mfs;
  const core::PfBasedStrategy pbs90(0.9);
  std::printf("      offline proposals: MFS A = %.1f, PBS(90%%) A = %.1f\n",
              mfs.propose(context), pbs90.propose(context));

  // Composed strategy for 8 trials vs random search with the same budget.
  const std::size_t trials = 8;
  {
    solvers::BatchRunner runner(prepared.problem(), solver, options);
    core::ComposedStrategy strategy(2718);
    const auto result = core::run_tuning_loop(
        runner, trials, [&] { return strategy.propose(context); },
        [&](const solvers::SolverSample& s) { strategy.observe(s); });
    const double best = prepared.to_original_length(result.best_fitness.back());
    std::printf("      QROSS composed:  best tour %.2f (gap %+.2f%%)\n", best,
                100.0 * (best / reference - 1.0));
  }
  {
    solvers::BatchRunner runner(prepared.problem(), solver, options);
    tuning::RandomSearch random(1.0, 100.0, 2718);
    const auto result =
        core::run_tuning_loop(runner, trials, [&] { return random.propose(); });
    if (std::isfinite(result.best_fitness.back())) {
      const double best =
          prepared.to_original_length(result.best_fitness.back());
      std::printf("      random search:   best tour %.2f (gap %+.2f%%)\n",
                  best, 100.0 * (best / reference - 1.0));
    } else {
      std::printf("      random search:   no feasible solution in %zu trials\n",
                  trials);
    }
  }
  std::printf("      (reference 2-opt tour: %.2f)\n", reference);
  return 0;
}
