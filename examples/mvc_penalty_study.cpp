// Minimum-Vertex-Cover penalty study (paper appendix B, interactive-sized).
//
// Demonstrates why penalty-weight tuning matters even when "any sigma >
// max weight" is theoretically sufficient: on an imperfect solver, larger
// penalties drown the objective in coefficient error and the recovered
// covers get heavier.

#include <cmath>
#include <cstdio>
#include <memory>

#include "problems/mvc/mvc.hpp"
#include "solvers/analog_noise.hpp"
#include "solvers/simulated_annealer.hpp"

using namespace qross;

int main() {
  const auto instance = mvc::generate_random_mvc(20, 0.5, 0xC0FE);
  const auto exact = mvc::solve_exact_cover(instance);
  const auto greedy = mvc::greedy_cover(instance);
  std::printf("G(20, 0.5): %zu edges; optimal cover weight %.3f, greedy %.3f\n\n",
              instance.edges().size(), exact.weight,
              instance.cover_weight(greedy));

  const auto clean = std::make_shared<solvers::SimulatedAnnealer>();
  solvers::AnalogNoiseParams noise;
  noise.relative_precision = 2e-3;  // analog control error (appendix B)
  const auto noisy = std::make_shared<solvers::AnalogNoiseSolver>(clean, noise);

  std::printf("%-10s %-22s %-22s\n", "sigma", "ideal solver", "noisy solver");
  std::printf("%-10s %-22s %-22s\n", "", "(best weight / feas)", "(best weight / feas)");
  for (double exponent = 0.0; exponent <= 4.0; exponent += 0.5) {
    const double sigma = std::pow(10.0, exponent);
    const auto model = instance.to_qubo(sigma);
    solvers::SolveOptions options;
    options.num_replicas = 12;
    options.num_sweeps = 250;
    options.seed = 11;

    std::printf("%-10.1f", sigma);
    for (const solvers::SolverPtr& solver :
         {solvers::SolverPtr(clean), solvers::SolverPtr(noisy)}) {
      const auto batch = solver->solve(model, options);
      double best = std::numeric_limits<double>::infinity();
      std::size_t feasible = 0;
      for (const auto& r : batch.results) {
        if (instance.is_cover(r.assignment)) {
          ++feasible;
          best = std::min(best, instance.cover_weight(r.assignment));
        }
      }
      if (feasible > 0) {
        std::printf(" %8.3f (x%.2f) %2zu/12 ", best, best / exact.weight,
                    feasible);
      } else {
        std::printf(" %-22s", "  infeasible");
      }
    }
    std::printf("\n");
  }
  std::printf("\nsigma <= max weight (~1) risks uncovered edges; huge sigma\n"
              "degrades the noisy solver's covers — tune, don't guess.\n");
  return 0;
}
